package crawler

import (
	"time"

	"canvassing/internal/stats"
)

// Failure reasons recorded in PageResult.FailReason when a visit does
// not survive. FailUnreachable also covers the webgen-level hard
// failures (CrawlOK == false) that exist without fault injection.
const (
	FailUnreachable = "unreachable"
	FailRefused     = "refused"
	FailTimeout     = "timeout"
	FailCircuitOpen = "circuit-open"
)

// backoff computes capped exponential retry delays with deterministic
// jitter: delay(n) is uniform in [d/2, d] where d = min(base<<n, cap).
// Keeping the lower half of the window (AWS-style "equal jitter")
// guarantees retries never stampede immediately while the cap bounds
// the total visit budget.
type backoff struct {
	base, cap time.Duration
	rng       *stats.RNG
}

// delay returns the wait before the n-th (0-based) retry.
func (b *backoff) delay(n int) time.Duration {
	if b.base <= 0 {
		return 0
	}
	d := b.cap
	// base<<n overflows for absurd n; treat anything past the cap's
	// doubling horizon as capped.
	if n < 32 {
		if exp := b.base << uint(n); exp > 0 && exp < b.cap {
			d = exp
		}
	}
	half := d / 2
	return half + time.Duration(b.rng.Float64()*float64(half))
}

// breaker is a consecutive-failure circuit breaker. Once a site fails
// threshold attempts in a row the circuit opens and further attempts
// are skipped — the graceful-degradation valve that stops a crawl from
// burning its retry budget on a site that is simply down. A threshold
// of 0 disables the breaker.
type breaker struct {
	threshold int
	fails     int
}

// open reports whether the circuit has tripped.
func (b *breaker) open() bool { return b.threshold > 0 && b.fails >= b.threshold }

// fail records one failed attempt.
func (b *breaker) fail() { b.fails++ }

// ok resets the consecutive-failure count after a success.
func (b *breaker) ok() { b.fails = 0 }

// connect drives the fault-injected connection phase of one visit: up
// to Retries+1 attempts, each under the virtual VisitTimeout deadline,
// with capped jittered exponential backoff between attempts and a
// per-site circuit breaker short-circuiting hopeless retries. It
// returns the fraction of the page served (1 for a clean load), the
// failure reason ("" on success), and the number of attempts made.
//
// Attempt-count semantics (pinned by TestConnectAttemptSemantics):
// attempts counts TRIES, not retries. A success on the n-th 0-based
// try reports n+1 (first-try success = 1); exhausting the budget
// reports Retries+1 (every try was made); a circuit opening before the
// n-th try reports n (the tries actually made — the skipped try is not
// counted). The crawl.retry counter, by contrast, counts RETRIES:
// attempts-1 for any visit that got past its first try, because the
// first try of a visit is never a retry.
func connect(site string, cfg *Config, mx *crawlMetrics, pd *pageDelta) (truncate float64, reason string, attempts int) {
	bo := backoff{base: cfg.BackoffBase, cap: cfg.BackoffCap,
		rng: stats.NewRNG(cfg.Seed).Fork("backoff:" + site)}
	br := breaker{threshold: cfg.BreakerThreshold}
	max := cfg.Retries + 1
	for n := 0; n < max; n++ {
		if br.open() {
			if mx != nil && mx.faults != nil {
				pd.inc(mx.faults.circuitOpen)
			}
			return 0, FailCircuitOpen, n
		}
		if n > 0 {
			d := bo.delay(n - 1)
			if mx != nil && mx.faults != nil {
				pd.inc(mx.faults.retries)
				pd.observeDuration(mx.faults.backoff, d)
			}
			if cfg.Sleep != nil {
				cfg.Sleep(d)
			}
		}
		at := cfg.Faults.Attempt(site, n)
		if mx != nil && mx.faults != nil {
			pd.observeDuration(mx.faults.virtual, at.Latency)
		}
		if at.Err != nil {
			reason = FailRefused
			if mx != nil && mx.faults != nil {
				pd.inc(mx.faults.refused)
			}
			br.fail()
			continue
		}
		if at.Latency > cfg.VisitTimeout {
			reason = FailTimeout
			if mx != nil && mx.faults != nil {
				pd.inc(mx.faults.timeouts)
			}
			br.fail()
			continue
		}
		return at.Truncate, "", n + 1
	}
	return 0, reason, max
}
