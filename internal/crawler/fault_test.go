package crawler

import (
	"encoding/json"
	"testing"

	"canvassing/internal/netsim"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/web"
)

func marshalPages(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(res.Pages)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestZeroRateFaultModelIsIdentity pins the invariant the whole PR
// rests on: a crawl routed through the resilience engine with a 0%
// fault model produces byte-identical results to a crawl with no fault
// model at all.
func TestZeroRateFaultModelIsIdentity(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)

	plain := Crawl(w, sites, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Faults = netsim.NewFaultModel(cfg.Seed, 0)
	faulted := Crawl(w, sites, cfg)

	a, b := marshalPages(t, plain), marshalPages(t, faulted)
	if string(a) != string(b) {
		t.Fatal("zero-rate fault crawl diverged from the fault-free crawl")
	}
}

// okSite finds a crawlable site; withScripts additionally demands
// enough script tags for truncation to bite.
func okSite(t *testing.T, sites []*web.Site, minScripts int) *web.Site {
	t.Helper()
	for _, s := range sites {
		if s.CrawlOK && len(s.Scripts) >= minScripts {
			return s
		}
	}
	t.Fatalf("no crawlable site with >= %d scripts", minScripts)
	return nil
}

// TestFaultSemantics pins what each fault kind does to a visit under
// the default engine parameters (3 retries, breaker threshold 3).
func TestFaultSemantics(t *testing.T) {
	w := testWeb(t)
	site := okSite(t, w.CohortSites(web.Popular), 2)

	cases := []struct {
		name       string
		plan       netsim.FaultPlan
		breaker    int // 0 = default (3)
		wantOK     bool
		wantReason string
		wantDegr   bool
	}{
		{name: "healthy", plan: netsim.FaultPlan{Kind: netsim.FaultNone, Truncate: 1}, wantOK: true},
		{name: "outage trips the breaker",
			plan:       netsim.FaultPlan{Kind: netsim.FaultOutage, Truncate: 1},
			wantReason: FailCircuitOpen},
		{name: "outage without breaker exhausts retries as refused",
			plan:       netsim.FaultPlan{Kind: netsim.FaultOutage, Truncate: 1},
			breaker:    100, // above Retries: breaker never trips
			wantReason: FailRefused},
		{name: "flaky recovers within the retry budget",
			plan:   netsim.FaultPlan{Kind: netsim.FaultFlaky, FailCount: 2, Truncate: 1},
			wantOK: true},
		{name: "latency spike recovers within the retry budget",
			plan:   netsim.FaultPlan{Kind: netsim.FaultLatency, FailCount: 1, Truncate: 1},
			wantOK: true},
		{name: "truncation degrades gracefully",
			plan:     netsim.FaultPlan{Kind: netsim.FaultTruncate, Truncate: 0.5},
			wantOK:   true,
			wantDegr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Faults = netsim.NewFaultModel(cfg.Seed, 0)
			cfg.Faults.Force(site.Domain, tc.plan)
			cfg.BreakerThreshold = tc.breaker
			res := Crawl(w, []*web.Site{site}, cfg)
			p := res.Pages[0]
			if p.OK != tc.wantOK {
				t.Fatalf("OK = %v, want %v (%+v)", p.OK, tc.wantOK, p)
			}
			if p.FailReason != tc.wantReason {
				t.Fatalf("FailReason = %q, want %q", p.FailReason, tc.wantReason)
			}
			if p.Degraded != tc.wantDegr {
				t.Fatalf("Degraded = %v, want %v", p.Degraded, tc.wantDegr)
			}
			if tc.wantDegr {
				if len(p.ScriptErrors) == 0 {
					t.Fatal("degraded page should report truncated script fetches")
				}
				for _, msg := range p.ScriptErrors {
					if msg == "fetch: truncated response" {
						return
					}
				}
				t.Fatalf("no truncation error among %v", p.ScriptErrors)
			}
		})
	}
}

// TestFaultMetricsAndEvents drives a moderately faulty crawl and checks
// the resilience engine leaves its telemetry trail: retry/refusal/
// timeout/circuit counters move, every visit files a visit.outcome
// event, and Stats() agrees with the per-page fields.
func TestFaultMetricsAndEvents(t *testing.T) {
	w := testWeb(t)
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	tel := obs.NewTelemetry()
	cfg := DefaultConfig()
	cfg.Telemetry = tel
	cfg.Condition = "control"
	cfg.Faults = netsim.NewFaultModel(7, 0.3)
	res := Crawl(w, sites, cfg)

	snap := tel.Metrics.Snapshot()
	for _, name := range []string{"crawl.retry", "crawl.refused", "crawl.timeout", "crawl.circuit-open"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s stayed zero at 30%% faults", name)
		}
	}

	st := res.Stats().Total
	if st.FailReasons[FailCircuitOpen] == 0 {
		t.Error("expected circuit-open failures at 30% faults")
	}
	if st.Degraded == 0 {
		t.Error("expected degraded pages at 30% faults")
	}
	if got := snap.Counters["crawl.visits.degraded"]; got != int64(st.Degraded) {
		t.Errorf("degraded counter %d != stats %d", got, st.Degraded)
	}
	if st.OK == 0 {
		t.Fatal("crawl should mostly survive 30% faults")
	}

	outcomes := 0
	byVerdict := map[string]int{}
	for _, e := range tel.Events.Events() {
		if e.Kind == event.VisitOutcome {
			outcomes++
			byVerdict[e.Verdict]++
		}
	}
	if outcomes != len(sites) {
		t.Fatalf("visit.outcome events = %d, want one per site (%d)", outcomes, len(sites))
	}
	if byVerdict["ok"] == 0 || byVerdict["degraded"] == 0 || byVerdict[FailCircuitOpen] == 0 {
		t.Fatalf("verdict mix missing expected outcomes: %v", byVerdict)
	}
	if byVerdict["ok"]+byVerdict["degraded"] != st.OK {
		t.Fatalf("ok+degraded events %d != OK pages %d", byVerdict["ok"]+byVerdict["degraded"], st.OK)
	}
}

// TestDegradedDenominators is the degraded-page accounting regression
// test: a degraded page is an OK page (it loaded, partially) and must
// be counted in the success denominator exactly once — never double-
// counted as both ok and degraded, never subtracted from OK, and never
// present in a fault-free crawl. Prevalence rates divide by OK, so a
// drifting denominator silently skews every headline number.
func TestDegradedDenominators(t *testing.T) {
	w := testWeb(t)
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)

	check := func(t *testing.T, res *Result, tel *obs.Telemetry, wantDegraded bool) {
		st := res.Stats().Total
		if st.OK+st.Failed != st.Visited {
			t.Fatalf("OK %d + Failed %d != Visited %d", st.OK, st.Failed, st.Visited)
		}
		if got := len(res.SuccessfulPages()); got != st.OK {
			t.Fatalf("SuccessfulPages() = %d, Stats().OK = %d — degraded pages counted inconsistently", got, st.OK)
		}
		if st.Degraded > st.OK {
			t.Fatalf("Degraded %d exceeds OK %d: degraded must be a subset of OK", st.Degraded, st.OK)
		}
		if wantDegraded == (st.Degraded == 0) {
			t.Fatalf("Degraded = %d, want degraded pages present: %v", st.Degraded, wantDegraded)
		}
		degradedSeen := 0
		for _, p := range res.SuccessfulPages() {
			if p.Degraded {
				degradedSeen++
				if !p.OK {
					t.Fatalf("page %s is Degraded but not OK", p.Domain)
				}
			}
		}
		if degradedSeen != st.Degraded {
			t.Fatalf("degraded pages among successes = %d, Stats().Degraded = %d", degradedSeen, st.Degraded)
		}
		// The counters feeding reports must use the same denominators.
		snap := tel.Metrics.Snapshot()
		if got := snap.Counters["crawl.visits.ok"]; got != int64(st.OK) {
			t.Fatalf("crawl.visits.ok = %d, want %d (degraded pages must count as ok visits)", got, st.OK)
		}
		if got := snap.Counters["crawl.visits.failed"]; got != int64(st.Failed) {
			t.Fatalf("crawl.visits.failed = %d, want %d", got, st.Failed)
		}
		if got := snap.Counters["crawl.visits.degraded"]; got != int64(st.Degraded) {
			t.Fatalf("crawl.visits.degraded = %d, want %d", got, st.Degraded)
		}
	}

	t.Run("fault-free", func(t *testing.T) {
		tel := obs.NewTelemetry()
		cfg := DefaultConfig()
		cfg.Telemetry = tel
		check(t, Crawl(w, sites, cfg), tel, false)
	})
	t.Run("fault-injected", func(t *testing.T) {
		tel := obs.NewTelemetry()
		cfg := DefaultConfig()
		cfg.Telemetry = tel
		cfg.Faults = netsim.NewFaultModel(7, 0.3)
		check(t, Crawl(w, sites, cfg), tel, true)
	})
}

// TestFaultFreeCrawlRecordsNoOutcomes guards the bundle byte-identity
// contract from the event side: without a FaultModel, no visit.outcome
// events and no fault counters may appear.
func TestFaultFreeCrawlRecordsNoOutcomes(t *testing.T) {
	w := testWeb(t)
	tel := obs.NewTelemetry()
	cfg := DefaultConfig()
	cfg.Telemetry = tel
	Crawl(w, w.CohortSites(web.Popular), cfg)
	for _, e := range tel.Events.Events() {
		if e.Kind == event.VisitOutcome {
			t.Fatal("fault-free crawl recorded a visit.outcome event")
		}
	}
	snap := tel.Metrics.Snapshot()
	for name := range snap.Counters {
		switch name {
		case "crawl.retry", "crawl.timeout", "crawl.refused", "crawl.circuit-open", "crawl.visits.degraded":
			t.Fatalf("fault-free crawl registered fault counter %s", name)
		}
	}
}

// TestFaultedCrawlDeterministicAcrossWorkers pins that fault decisions
// depend only on (seed, site), not on worker interleaving.
func TestFaultedCrawlDeterministicAcrossWorkers(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)
	run := func(workers int) []byte {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Faults = netsim.NewFaultModel(5, 0.25)
		return marshalPages(t, Crawl(w, sites, cfg))
	}
	if string(run(1)) != string(run(8)) {
		t.Fatal("faulted crawl results depend on worker count")
	}
}

// TestFaultedCrawlConcurrentStress exists for the -race build: a wide
// pool against a heavily faulted web exercises the FaultModel, the
// fault metrics, and the event sink concurrently.
func TestFaultedCrawlConcurrentStress(t *testing.T) {
	w := testWeb(t)
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	tel := obs.NewTelemetry()
	cfg := DefaultConfig()
	cfg.Workers = 32
	cfg.Telemetry = tel
	cfg.Condition = "stress"
	cfg.Faults = netsim.NewFaultModel(13, 0.4)
	res := Crawl(w, sites, cfg)
	if len(res.Pages) != len(sites) {
		t.Fatalf("pages = %d, want %d", len(res.Pages), len(sites))
	}
	for i, p := range res.Pages {
		if p == nil {
			t.Fatalf("page %d missing", i)
		}
		if !p.OK && p.FailReason == "" {
			t.Fatalf("failed page %s lacks a FailReason", p.Domain)
		}
	}
}
