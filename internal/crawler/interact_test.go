package crawler

import (
	"encoding/json"
	"strings"
	"testing"

	"canvassing/internal/web"
)

// interactWeb generates a web that carries the interaction-gated vendor
// deployments.
func interactWeb(t *testing.T) *web.Web {
	t.Helper()
	return web.Generate(web.Config{Seed: 21, Scale: 0.03, TrancoMax: 1_000_000, Interact: true})
}

func TestParseProfile(t *testing.T) {
	good := []string{
		"click",
		"click,scroll,idle",
		" click , focus ,idle",
	}
	for _, in := range good {
		p, err := ParseProfile(in)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", in, err)
		}
		// Round trip: String() re-parses to the same profile.
		q, err := ParseProfile(p.String())
		if err != nil {
			t.Fatalf("round trip %q: %v", p.String(), err)
		}
		if p.String() != q.String() {
			t.Fatalf("round trip changed profile: %q vs %q", p.String(), q.String())
		}
	}
	bad := []string{"", "click,,idle", "hover", "click scroll", strings.Repeat("click,", MaxProfileActions) + "click"}
	for _, in := range bad {
		if _, err := ParseProfile(in); err == nil {
			t.Fatalf("ParseProfile(%q) accepted invalid input", in)
		}
	}
}

// FuzzParseProfile pins the parser's round-trip property: any input the
// parser accepts must re-render (String) into a form it accepts again,
// yielding the identical profile; and no input may panic it.
func FuzzParseProfile(f *testing.F) {
	f.Add("click")
	f.Add("click,scroll,focus,idle")
	f.Add(" idle ,click")
	f.Add("")
	f.Add("hover")
	f.Add("click,")
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParseProfile(in)
		if err != nil {
			return
		}
		if len(p.Actions) == 0 || len(p.Actions) > MaxProfileActions {
			t.Fatalf("accepted profile with %d actions", len(p.Actions))
		}
		q, err := ParseProfile(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", p.String(), err)
		}
		if p.String() != q.String() {
			t.Fatalf("round trip not stable: %q vs %q", p.String(), q.String())
		}
	})
}

func TestProfileForDeterministicAndShaped(t *testing.T) {
	domains := []string{"a.example", "b.example", "c.example", "d.example"}
	distinct := make(map[string]bool)
	for _, d := range domains {
		p1 := ProfileFor(7, d)
		p2 := ProfileFor(7, d)
		if p1.String() != p2.String() {
			t.Fatalf("ProfileFor(7, %s) not deterministic: %q vs %q", d, p1.String(), p2.String())
		}
		distinct[p1.String()] = true
		if n := len(p1.Actions); n == 0 || n > MaxProfileActions {
			t.Fatalf("profile for %s has %d actions", d, n)
		}
		// Every profile carries at least one click (the gesture most
		// gated vendors key on) and ends with an idle pause.
		hasClick := false
		for _, a := range p1.Actions {
			if a.Kind == ActionClick {
				hasClick = true
			}
		}
		if !hasClick {
			t.Fatalf("profile for %s has no click: %q", d, p1.String())
		}
		if p1.Actions[len(p1.Actions)-1].Kind != ActionIdle {
			t.Fatalf("profile for %s does not end idle: %q", d, p1.String())
		}
		if ProfileFor(8, d).String() == p1.String() && ProfileFor(9, d).String() == p1.String() {
			t.Fatalf("profile for %s ignores the seed", d)
		}
	}
	if len(distinct) < 2 {
		t.Fatal("all domains drew the same profile")
	}
}

// TestInteractionSurfacesDeferredVendors is the engine's reason to
// exist: on a web carrying interaction-gated deployments, the
// interaction crawl must extract canvases from the gesture/idle-gated
// vendor scripts that the plain load-time crawl never sees.
func TestInteractionSurfacesDeferredVendors(t *testing.T) {
	w := interactWeb(t)
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)

	plain := Crawl(w, sites, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Interact = true
	driven := Crawl(w, sites, cfg)

	gated := []string{"datadome.co", "moatads.com", "online-metrix.net"}
	count := func(res *Result, pattern string) int {
		n := 0
		for _, p := range res.SuccessfulPages() {
			for _, e := range p.Extractions {
				if strings.Contains(e.ScriptURL, pattern) {
					n++
				}
			}
		}
		return n
	}
	for _, pat := range gated {
		if n := count(plain, pat); n != 0 {
			t.Errorf("load-time crawl extracted %d canvases from gated vendor %s", n, pat)
		}
		if n := count(driven, pat); n == 0 {
			t.Errorf("interaction crawl extracted nothing from gated vendor %s", pat)
		}
	}
	// Forter only defers by timer; the settle drain catches it in BOTH
	// crawls — the control that separates "deferred" from "gated".
	if n := count(plain, "forter.com"); n == 0 {
		t.Error("settle drain missed Forter's setTimeout probe in the plain crawl")
	}
}

// TestInteractEngineInertWithoutHandlers pins the Interact=false
// compatibility contract from the crawler side: driving the interaction
// engine over a web with NO gated deployments changes no page result —
// the baseline scripts register no handlers, so every dispatch finds an
// empty registry and extractions stay identical.
func TestInteractEngineInertWithoutHandlers(t *testing.T) {
	w := testWeb(t) // no Interact: no deferred deployments
	sites := w.CohortSites(web.Popular)

	plain := Crawl(w, sites, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Interact = true
	driven := Crawl(w, sites, cfg)

	a, err := json.Marshal(plain.Pages)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(driven.Pages)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("interaction engine changed page results on a handler-free web")
	}
}

// TestFixedBehaviorProfile pins Config.Behavior: a caller-supplied
// profile overrides the seeded per-site ones for every site.
func TestFixedBehaviorProfile(t *testing.T) {
	w := interactWeb(t)
	sites := w.CohortSites(web.Popular)

	prof, err := ParseProfile("scroll,idle")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Interact = true
	cfg.Behavior = &prof
	res := Crawl(w, sites, cfg)

	// Without any click, click-gated DataDome must stay invisible while
	// scroll-gated Moat fires.
	sawMoat, sawDD := false, false
	for _, p := range res.SuccessfulPages() {
		for _, e := range p.Extractions {
			if strings.Contains(e.ScriptURL, "moatads.com") {
				sawMoat = true
			}
			if strings.Contains(e.ScriptURL, "datadome.co") {
				sawDD = true
			}
		}
	}
	if !sawMoat {
		t.Error("scroll profile did not trigger the scroll-gated vendor")
	}
	if sawDD {
		t.Error("profile without clicks triggered the click-gated vendor")
	}
}

func BenchmarkProfileFor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ProfileFor(uint64(i), "bench.example")
	}
}

// BenchmarkInteractCrawl measures the interaction engine's full cost on
// top of BenchmarkCrawlPopular: same scale, deferred vendors planted,
// per-site behaviour profiles driven after settle.
func BenchmarkInteractCrawl(b *testing.B) {
	w := web.Generate(web.Config{Seed: 21, Scale: 0.01, TrancoMax: 1_000_000, Interact: true})
	sites := w.CohortSites(web.Popular)
	cfg := DefaultConfig()
	cfg.Interact = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Crawl(w, sites, cfg)
	}
}
