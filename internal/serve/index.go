package serve

import (
	"sort"

	"canvassing/internal/bundle"
	"canvassing/internal/detect"
	"canvassing/internal/obs/event"
	"canvassing/internal/stats"
)

// CanvasRecord is the read index's view of one canvas identity: every
// fact the evidence log recorded about a hash, flattened for O(1)
// lookup. Records are immutable after Build, which is what makes the
// shard maps safe for lock-free concurrent reads.
type CanvasRecord struct {
	// Hash is the SHA-256 canvas identity (detect.HashDataURL).
	Hash string
	// Verdict is the §3.2 classification replayed from the bundle's
	// detect.classify events.
	Fingerprintable bool
	Exclude         detect.Reason
	// AnimSeen reports that at least one extraction of this canvas came
	// from an animation-flagged script (heuristic 3 fired).
	AnimSeen bool
	// W, H, Format are the decoded payload properties from the event
	// detail (zero when the detail predates the format).
	W, H   int
	Format string
	// Extractions counts detect.classify events for this hash across
	// all conditions.
	Extractions int
	// Conditions lists the crawl conditions the hash appeared in, sorted.
	Conditions []string
	// Sites lists the distinct extracting sites across conditions, sorted.
	Sites []string
	// ScriptURLs lists the distinct extracting scripts, sorted.
	ScriptURLs []string
	// ClusterSites lists the cluster.assign members, sorted; CohortOf
	// maps each member to its cohort label.
	ClusterSites []string
	CohortOf     map[string]string
	// Vendor and Mechanism carry the attrib.evidence group resolution
	// ("" when the group is unidentified).
	Vendor, Mechanism string
}

// BlockedScript is one blocklist.match decision on a site.
type BlockedScript struct {
	URL  string `json:"url"`
	Rule string `json:"rule,omitempty"`
	List string `json:"list,omitempty"`
}

// SiteCondStats is a site's per-condition evidence tally.
type SiteCondStats struct {
	Extractions     int
	Fingerprintable int
	Excluded        map[detect.Reason]int
	Blocked         []BlockedScript
	VisitOutcome    string
}

// VendorRef is one site→vendor attribution with its mechanism.
type VendorRef struct {
	Vendor    string `json:"vendor"`
	Mechanism string `json:"mechanism,omitempty"`
}

// SiteRecord is the read index's per-site view.
type SiteRecord struct {
	Domain string
	// Cohort is the site's cohort label when clustering recorded it
	// ("popular", "tail", "demo"; "" for sites with no fingerprintable
	// canvas).
	Cohort string
	// Conditions maps crawl condition → evidence tally.
	Conditions map[string]*SiteCondStats
	// CondNames is Conditions' key set, sorted (deterministic render order).
	CondNames []string
	// Vendors lists the attributed vendors, sorted by slug.
	Vendors []VendorRef
	// Clusters lists the canvas-group hashes the site belongs to, sorted.
	Clusters []string
	// Randomization is the Algorithm 1 inconsistency verdict, when the
	// bundle's run probed this site ("" otherwise).
	Randomization string
}

// Fingerprinting reports whether any condition saw a fingerprintable
// canvas on the site.
func (s *SiteRecord) Fingerprinting() bool {
	for _, cs := range s.Conditions {
		if cs.Fingerprintable > 0 {
			return true
		}
	}
	return false
}

// IndexStats summarizes a built index (the /v1/stats payload core and
// the startup banner's numbers).
type IndexStats struct {
	EventsIndexed           int
	Canvases                int
	FingerprintableCanvases int
	Sites                   int
	FingerprintingSites     int
	Clusters                int
	AttributedClusters      int
	Shards                  int
	Conditions              []string
	// TopCluster is the hash with the most cluster members (ties broken
	// by hash); TopSite the fingerprinting site with the most
	// fingerprintable extractions (ties broken by domain). Both are ""
	// on empty indexes. serve -check uses them as deterministic probes.
	TopCluster string
	TopSite    string
}

// Index holds the sharded read-only lookup structures over one loaded
// bundle. Shard assignment is a pure function of the key (FNV hash mod
// shard count), and every slice inside a record is sorted during the
// deterministic finalize pass — so responses are byte-identical for any
// shard count and any GOMAXPROCS (TestServeShardInvariance pins this).
type Index struct {
	shards int
	canvas []map[string]*CanvasRecord
	sites  []map[string]*SiteRecord
	stats  IndexStats
}

// DefaultShards is the index shard count when Config.Shards <= 0.
const DefaultShards = 8

// BuildIndex constructs the sharded indexes from a loaded bundle's
// event log. Construction iterates events in record order and
// finalizes over sorted key slices — never over Go map iteration — so
// the result is deterministic.
func BuildIndex(b *bundle.Bundle, shards int) *Index {
	if shards <= 0 {
		shards = DefaultShards
	}
	ix := &Index{
		shards: shards,
		canvas: make([]map[string]*CanvasRecord, shards),
		sites:  make([]map[string]*SiteRecord, shards),
	}
	for i := 0; i < shards; i++ {
		ix.canvas[i] = map[string]*CanvasRecord{}
		ix.sites[i] = map[string]*SiteRecord{}
	}

	// Accumulate into builder maps first; set semantics live here so
	// the finalize pass can sort once.
	canvases := map[string]*canvasBuild{}
	sites := map[string]*siteBuild{}
	canvasOf := func(hash string) *canvasBuild {
		cb := canvases[hash]
		if cb == nil {
			cb = &canvasBuild{
				rec:        &CanvasRecord{Hash: hash},
				conditions: map[string]bool{},
				sites:      map[string]bool{},
				scripts:    map[string]bool{},
			}
			canvases[hash] = cb
		}
		return cb
	}
	siteOf := func(domain string) *siteBuild {
		sb := sites[domain]
		if sb == nil {
			sb = &siteBuild{
				rec:      &SiteRecord{Domain: domain, Conditions: map[string]*SiteCondStats{}},
				vendors:  map[string]string{},
				clusters: map[string]bool{},
				blocked:  map[string]map[string]bool{},
			}
			sites[domain] = sb
		}
		return sb
	}

	for i := range b.Events {
		e := &b.Events[i]
		switch e.Kind {
		case event.DetectClassify:
			cb := canvasOf(e.Subject)
			r := cb.rec
			r.Extractions++
			if e.Crawl != "" {
				cb.conditions[e.Crawl] = true
			}
			if e.Site != "" {
				cb.sites[e.Site] = true
			}
			if script, w, h, format, ok := detect.ParseEventDetail(e.Detail); ok {
				if script != "" {
					cb.scripts[script] = true
				}
				// First decodable detail wins; all extractions of one
				// hash share the payload, so any event's dims agree.
				if r.Format == "" && format != "" {
					r.W, r.H, r.Format = w, h, string(format)
				}
			}
			if e.Verdict == "fingerprintable" {
				r.Fingerprintable = true
			} else if r.Exclude == detect.None && !r.Fingerprintable {
				r.Exclude = detect.Reason(e.Evidence)
			}
			if detect.Reason(e.Evidence) == detect.AnimationScript {
				r.AnimSeen = true
			}
			sb := siteOf(e.Site)
			cs := sb.cond(e.Crawl)
			cs.Extractions++
			if e.Verdict == "fingerprintable" {
				cs.Fingerprintable++
			} else {
				if cs.Excluded == nil {
					cs.Excluded = map[detect.Reason]int{}
				}
				cs.Excluded[detect.Reason(e.Evidence)]++
			}
		case event.ClusterAssign:
			cb := canvasOf(e.Subject)
			if cb.rec.CohortOf == nil {
				cb.rec.CohortOf = map[string]string{}
			}
			if _, seen := cb.rec.CohortOf[e.Site]; !seen {
				cb.rec.ClusterSites = append(cb.rec.ClusterSites, e.Site)
			}
			cb.rec.CohortOf[e.Site] = e.Detail
			sb := siteOf(e.Site)
			sb.clusters[e.Subject] = true
			if sb.rec.Cohort == "" {
				sb.rec.Cohort = e.Detail
			}
		case event.AttribEvidence:
			switch {
			case e.Site != "":
				sb := siteOf(e.Site)
				if _, seen := sb.vendors[e.Verdict]; !seen {
					sb.vendors[e.Verdict] = e.Evidence
				}
			case e.Evidence != "ground-truth":
				// Group→vendor resolution: Subject is a canvas hash.
				cb := canvasOf(e.Subject)
				if cb.rec.Vendor == "" {
					cb.rec.Vendor, cb.rec.Mechanism = e.Verdict, e.Evidence
				}
			}
		case event.BlocklistMatch:
			sb := siteOf(e.Site)
			set := sb.blocked[e.Crawl]
			if set == nil {
				set = map[string]bool{}
				sb.blocked[e.Crawl] = set
			}
			if !set[e.Subject] {
				set[e.Subject] = true
				cs := sb.cond(e.Crawl)
				cs.Blocked = append(cs.Blocked, BlockedScript{URL: e.Subject, Rule: e.Evidence, List: e.Detail})
			}
		case event.RandomizeVerdict:
			sb := siteOf(e.Site)
			if sb.rec.Randomization == "" {
				sb.rec.Randomization = e.Verdict
			}
		case event.VisitOutcome:
			sb := siteOf(e.Site)
			sb.cond(e.Crawl).VisitOutcome = e.Verdict
		}
		ix.stats.EventsIndexed++
	}

	// Finalize over sorted keys: shard assignment and every record
	// slice are derived here, never from map iteration order.
	hashes := sortedKeys(canvases)
	for _, h := range hashes {
		cb := canvases[h]
		r := cb.rec
		r.Conditions = sortedKeys(cb.conditions)
		r.Sites = sortedKeys(cb.sites)
		r.ScriptURLs = sortedKeys(cb.scripts)
		sort.Strings(r.ClusterSites)
		ix.canvas[ix.shardOf(h)][h] = r
		ix.stats.Canvases++
		if r.Fingerprintable {
			ix.stats.FingerprintableCanvases++
		}
		if len(r.ClusterSites) > 0 {
			ix.stats.Clusters++
			if r.Vendor != "" {
				ix.stats.AttributedClusters++
			}
			if best := ix.statsTop(r); best {
				ix.stats.TopCluster = h
			}
		}
	}
	domains := sortedKeys(sites)
	condSet := map[string]bool{}
	topFP := -1
	for _, d := range domains {
		sb := sites[d]
		r := sb.rec
		r.CondNames = sortedKeys(r.Conditions)
		for _, c := range r.CondNames {
			if c != "" {
				condSet[c] = true
			}
			sort.Slice(r.Conditions[c].Blocked, func(i, j int) bool {
				return r.Conditions[c].Blocked[i].URL < r.Conditions[c].Blocked[j].URL
			})
		}
		for _, slug := range sortedKeys(sb.vendors) {
			r.Vendors = append(r.Vendors, VendorRef{Vendor: slug, Mechanism: sb.vendors[slug]})
		}
		r.Clusters = sortedKeys(sb.clusters)
		ix.sites[ix.shardOf(d)][d] = r
		ix.stats.Sites++
		if r.Fingerprinting() {
			ix.stats.FingerprintingSites++
			if fp := r.fingerprintableTotal(); fp > topFP {
				topFP = fp
				ix.stats.TopSite = d
			}
		}
	}
	ix.stats.Conditions = sortedKeys(condSet)
	ix.stats.Shards = shards
	return ix
}

// statsTop reports whether r beats the current TopCluster (more
// members; ties by smaller hash, and hashes arrive in sorted order so
// the first max wins).
func (ix *Index) statsTop(r *CanvasRecord) bool {
	if ix.stats.TopCluster == "" {
		return true
	}
	cur := ix.Canvas(ix.stats.TopCluster)
	return len(r.ClusterSites) > len(cur.ClusterSites)
}

func (s *SiteRecord) fingerprintableTotal() int {
	n := 0
	for _, cs := range s.Conditions {
		n += cs.Fingerprintable
	}
	return n
}

// Canvas returns the record for a canvas hash, or nil.
func (ix *Index) Canvas(hash string) *CanvasRecord {
	return ix.canvas[ix.shardOf(hash)][hash]
}

// Site returns the record for a domain, or nil.
func (ix *Index) Site(domain string) *SiteRecord {
	return ix.sites[ix.shardOf(domain)][domain]
}

// Stats returns the index summary.
func (ix *Index) Stats() IndexStats { return ix.stats }

// Shards returns the shard count the index was built with.
func (ix *Index) Shards() int { return ix.shards }

// shardOf spreads keys over the shards: a pure function of the key, so
// the record a lookup finds never depends on the shard count.
func (ix *Index) shardOf(key string) int {
	return int(stats.HashString(key) % uint64(ix.shards))
}

type canvasBuild struct {
	rec        *CanvasRecord
	conditions map[string]bool
	sites      map[string]bool
	scripts    map[string]bool
}

type siteBuild struct {
	rec      *SiteRecord
	vendors  map[string]string          // slug → mechanism (first wins)
	clusters map[string]bool            // hashes
	blocked  map[string]map[string]bool // cond → script URL set
}

func (sb *siteBuild) cond(c string) *SiteCondStats {
	cs := sb.rec.Conditions[c]
	if cs == nil {
		cs = &SiteCondStats{}
		sb.rec.Conditions[c] = cs
	}
	return cs
}

// sortedKeys returns m's keys sorted — the only way builder maps are
// ever iterated.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
