package serve_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	neturl "net/url"
	"sync"
	"testing"
	"time"

	"canvassing/internal/blocklist"
	"canvassing/internal/bundle"
	"canvassing/internal/detect"
	"canvassing/internal/imaging"
	"canvassing/internal/obs/event"
	"canvassing/internal/serve"
)

// The fuzz fixture is a hand-built in-memory bundle (no study run, no
// disk): iterations must be cheap, and the interesting surface is the
// request parsing, not the index contents.
var fuzzFix struct {
	once sync.Once
	mux  *http.ServeMux
	err  error
}

func fuzzMux(tb testing.TB) *http.ServeMux {
	tb.Helper()
	fuzzFix.once.Do(func() {
		b := &bundle.Bundle{Manifest: bundle.Manifest{Seed: 1, Scale: 0.01, Conditions: []string{"control"}}}
		b.Events = []event.Event{
			{Kind: event.DetectClassify, Crawl: "control", Site: "a.example", Subject: "hash-fp",
				Verdict: "fingerprintable", Detail: detect.EventDetail("https://t.example/fp.js", 240, 60, imaging.PNG)},
			{Kind: event.DetectClassify, Crawl: "control", Site: "b.example", Subject: "hash-small",
				Verdict: "excluded", Evidence: "small-canvas", Detail: detect.EventDetail("https://t.example/px.js", 4, 4, imaging.PNG)},
			{Kind: event.ClusterAssign, Site: "a.example", Subject: "hash-fp", Detail: "popular"},
			{Kind: event.AttribEvidence, Subject: "hash-fp", Verdict: "acme", Evidence: "demo-hash"},
			{Kind: event.BlocklistMatch, Crawl: "abp", Site: "a.example", Subject: "https://t.example/fp.js",
				Verdict: "blocked", Evidence: "||t.example^", Detail: "EasyList"},
		}
		svc, err := serve.New(b, serve.Config{
			Window:   time.Microsecond,
			ListsFor: func(uint64) *blocklist.StandardLists { return blocklist.NewStandardLists(1) },
		})
		if err != nil {
			fuzzFix.err = err
			return
		}
		mux := http.NewServeMux()
		for _, r := range svc.Routes() {
			mux.Handle(r.Pattern, r.Handler)
		}
		fuzzFix.mux = mux
	})
	if fuzzFix.err != nil {
		tb.Fatal(fuzzFix.err)
	}
	return fuzzFix.mux
}

// FuzzClassifyRequest throws arbitrary bytes at POST /v1/classify: the
// handler must never panic, must answer only 200/400/413, and must
// answer the same request identically twice (determinism survives the
// memo and the batcher).
func FuzzClassifyRequest(f *testing.F) {
	f.Add([]byte(`{"hash":"hash-fp"}`))
	f.Add([]byte(`{"hash":"unknown"}`))
	f.Add([]byte(`{"data_url":"data:image/png;base64,!!!","anim":true}`))
	f.Add([]byte(`{"data_url":"nonsense"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"hash":`))
	f.Add([]byte(``))
	f.Add(bytes.Repeat([]byte("a"), 4096))
	mux := fuzzMux(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		do := func() (int, string) {
			req := httptest.NewRequest("POST", "/v1/classify", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, req)
			return rec.Code, rec.Body.String()
		}
		s1, b1 := do()
		switch s1 {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("unexpected status %d for body %q", s1, body)
		}
		s2, b2 := do()
		if s1 != s2 || b1 != b2 {
			t.Fatalf("non-deterministic answer for %q: (%d, %q) then (%d, %q)", body, s1, b1, s2, b2)
		}
	})
}

// FuzzBlockQuery throws arbitrary url/type/page query values at
// GET /v1/block. The raw query is set directly (httptest.NewRequest
// panics on hostile URLs), so the handler sees exactly what a wire
// client could send.
func FuzzBlockQuery(f *testing.F) {
	f.Add("https://cdn.trk007-metrics.net/beacon.js", "script", "")
	f.Add("https://a.example/x.png", "image", "a.example")
	f.Add("not a url", "", "")
	f.Add("", "script", "page")
	f.Add("https://x.test/../../etc", "bogus-type", "\x00")
	f.Add("http://%zz", "document", "π.example")
	mux := fuzzMux(f)
	f.Fuzz(func(t *testing.T, rawURL, typ, page string) {
		do := func() (int, string) {
			req := httptest.NewRequest("GET", "/v1/block", nil)
			q := neturl.Values{}
			if rawURL != "" {
				q.Set("url", rawURL)
			}
			if typ != "" {
				q.Set("type", typ)
			}
			if page != "" {
				q.Set("page", page)
			}
			req.URL.RawQuery = q.Encode()
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, req)
			return rec.Code, rec.Body.String()
		}
		s1, b1 := do()
		if s1 != http.StatusOK && s1 != http.StatusBadRequest {
			t.Fatalf("unexpected status %d for url=%q type=%q page=%q", s1, rawURL, typ, page)
		}
		s2, b2 := do()
		if s1 != s2 || b1 != b2 {
			t.Fatalf("non-deterministic answer for url=%q type=%q page=%q", rawURL, typ, page)
		}
	})
}
