// Package serve is the detection-as-a-service layer: it loads a
// finished study's run bundle (manifest + evidence event log) and
// optional content-addressed snapshot store, builds sharded in-memory
// read indexes over the recorded verdicts, cluster assignments,
// attributions, and blocklist decisions, and answers JSON lookups at
// production rates:
//
//	POST /v1/classify        canvas hash or data-URL → verdict + heuristic breakdown
//	POST /v1/classify/batch  bulk hash lookup: one round trip, many verdicts
//	GET  /v1/cluster/{hash}  canvas group: members, cohorts, vendor attribution
//	GET  /v1/block?url=      would the standard lists block it, which rule/list
//	GET  /v1/site/{domain}   per-site prevalence summary
//	GET  /v1/stats           index summary (deterministic; serve -check uses it)
//
// Serving is strictly read-only over the bundle: loading builds
// immutable indexes and never rewrites an artifact byte
// (TestServeBundleInvariance), and every response is a pure function
// of the bundle regardless of shard count or GOMAXPROCS
// (TestServeShardInvariance). Concurrent identical lookups coalesce
// through a windowed singleflight Batcher so hot keys cost one index
// probe per window.
package serve

import (
	"fmt"
	"time"

	"canvassing/internal/analysis"
	"canvassing/internal/blocklist"
	"canvassing/internal/bundle"
	"canvassing/internal/detect"
	"canvassing/internal/obs"
	"canvassing/internal/obs/ops"
	"canvassing/internal/obs/window"
	"canvassing/internal/snapshot"
)

// Config configures service construction.
type Config struct {
	// Dir is the bundle directory to load (Load only).
	Dir string
	// SnapshotDir overrides the snapshot-store location. Empty means
	// autodetect <Dir>/snapshots and serve without a store when absent.
	SnapshotDir string
	// Shards is the index shard count (DefaultShards when <= 0).
	Shards int
	// Window is the lookup-batching window (DefaultWindow when <= 0).
	Window time.Duration
	// ListsFor rebuilds the blocklists for the bundle's seed —
	// canvassing.ListsForSeed in the binaries. Nil leaves /v1/block
	// answering 404 (the lists live in the root package, which this
	// package must not import).
	ListsFor func(seed uint64) *blocklist.StandardLists
}

// Service is a loaded, queryable verdict service.
type Service struct {
	Bundle *bundle.Bundle
	Index  *Index
	// Memo is the verdict cache, pre-seeded from the bundle's
	// detect.classify events; data-URL classifications the crawl never
	// saw compute once and cache here.
	Memo *analysis.Cache
	// Lists is the reconstructed blocklist set (nil without ListsFor).
	Lists *blocklist.StandardLists
	// Snapshots is the content-addressed body store (nil when the
	// bundle shipped without one).
	Snapshots *snapshot.Store
	// Tel is the service's own telemetry (request counters, serving
	// spans) — deliberately separate from the bundle's recorded
	// metrics, which stay frozen on disk.
	Tel *obs.Telemetry

	batch  *Batcher
	seeded int

	reqs    *obs.Counter
	errs    *obs.Counter
	latency *obs.Histogram
}

// Load reads the bundle (and snapshot store, if present) from disk and
// builds the service. It uses bundle.Load, so a directory holding a
// checkpoint.json sidecar — a half-finished study — is refused rather
// than served as stale verdicts.
func Load(cfg Config) (*Service, error) {
	b, err := bundle.Load(cfg.Dir)
	if err != nil {
		return nil, err
	}
	svc, err := New(b, cfg)
	if err != nil {
		return nil, err
	}
	snapDir := cfg.SnapshotDir
	optional := snapDir == ""
	if optional {
		snapDir = cfg.Dir + "/snapshots"
	}
	store, err := snapshot.Load(snapDir)
	switch {
	case err == nil:
		svc.Snapshots = store
	case !optional:
		return nil, fmt.Errorf("serve: snapshot store: %w", err)
	}
	return svc, nil
}

// New builds a service over an already-loaded bundle — the in-memory
// entry point tests and fuzz fixtures use. Index construction and memo
// seeding are deterministic: one ordered pass over the event log.
func New(b *bundle.Bundle, cfg Config) (*Service, error) {
	if b == nil {
		return nil, fmt.Errorf("serve: nil bundle")
	}
	tel := obs.NewTelemetry()
	svc := &Service{
		Bundle:  b,
		Index:   BuildIndex(b, cfg.Shards),
		Memo:    analysis.NewCache(tel.Metrics),
		Tel:     tel,
		batch:   NewBatcher(cfg.Window),
		reqs:    tel.Metrics.Counter("serve.requests"),
		errs:    tel.Metrics.Counter("serve.errors"),
		latency: tel.Metrics.Histogram("serve.latency.seconds", obs.LatencyBuckets()),
	}
	if cfg.ListsFor != nil {
		svc.Lists = cfg.ListsFor(b.Manifest.Seed)
	}
	svc.seeded = seedMemo(svc.Memo, b)
	tel.Status.MarkDone()
	return svc, nil
}

// seedMemo replays the bundle's detect.classify events into the verdict
// cache so /v1/classify answers for known payloads without recomputing.
// The event log does not record the extracting script's animation flag
// directly, but the verdict pins it down:
//
//   - "fingerprintable" implies heuristic 3 did not fire → anim=false;
//   - exclusion "animation-script" implies it did → anim=true;
//   - every other exclusion (lossy-format, small-canvas, undecodable)
//     fires before the animation check, so the verdict holds for both
//     flag values and both keys are seeded.
//
// Returns the number of events that seeded at least one key.
func seedMemo(memo *analysis.Cache, b *bundle.Bundle) int {
	n := 0
	for i := range b.Events {
		v, ok := detect.VerdictFromEvent(b.Events[i])
		if !ok {
			continue
		}
		hash := b.Events[i].Subject
		switch {
		case v.Fingerprintable:
			memo.Seed(detect.MemoKey{Hash: hash, Anim: false}, v)
		case v.Exclude == detect.AnimationScript:
			memo.Seed(detect.MemoKey{Hash: hash, Anim: true}, v)
		default:
			memo.Seed(detect.MemoKey{Hash: hash, Anim: false}, v)
			memo.Seed(detect.MemoKey{Hash: hash, Anim: true}, v)
		}
		n++
	}
	return n
}

// SeededVerdicts returns how many classify events seeded the memo.
func (s *Service) SeededVerdicts() int { return s.seeded }

// Batcher exposes the lookup batcher (tests observe its counters).
func (s *Service) Batcher() *Batcher { return s.batch }

// Start serves the API plus the full ops plane (/metrics.prom, /red,
// /statusz, /tracez, and the obs debug endpoints) on addr (":0" picks
// a port). win is the RED sliding window (0 = 1 minute).
func (s *Service) Start(addr string, withPprof bool, win time.Duration) (*ops.Plane, error) {
	view := window.New(s.Tel.Metrics, win)
	mux := obs.NewMux(s.Tel, withPprof, append(ops.Routes(s.Tel, view, nil), s.Routes()...)...)
	srv, err := obs.StartServer(addr, mux)
	if err != nil {
		return nil, err
	}
	view.Start(0)
	return &ops.Plane{Server: srv, View: view}, nil
}
