package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"testing"

	"canvassing"
	"canvassing/internal/serve"
	"canvassing/internal/web"
)

// The load benchmarks run against a Scale 0.2 study (the acceptance
// scale for the ≥50k lookups/s target) served over real HTTP on a
// loopback port. The fixture is built lazily inside the benchmarks so
// plain `go test` never pays for it; `make bench` records the rates
// into the BENCH_<date>.json snapshot via the "lookups/s" metric.
var benchFix struct {
	once   sync.Once
	base   string
	svc    *serve.Service
	hashes []string
	sites  []string
	err    error
}

func benchBase(b *testing.B) (string, []string, []string) {
	b.Helper()
	benchFix.once.Do(func() {
		dir, err := os.MkdirTemp("", "serve-bench")
		if err != nil {
			benchFix.err = err
			return
		}
		// Control-only: clustering/attribution still run in Analyze, and
		// one condition keeps the fixture build near the benchmark's own
		// runtime instead of dominating it.
		st := canvassing.New(canvassing.Options{Seed: 3, Scale: 0.2, Workers: 8, AnalysisWorkers: 8})
		st.RunControl()
		st.Analyze()
		if err := st.WriteBundle(dir); err != nil {
			benchFix.err = err
			return
		}
		svc, err := serve.Load(serve.Config{Dir: dir, ListsFor: canvassing.ListsForSeed})
		if err != nil {
			benchFix.err = err
			return
		}
		plane, err := svc.Start("127.0.0.1:0", false, 0)
		if err != nil {
			benchFix.err = err
			return
		}
		benchFix.base = plane.URL()
		benchFix.svc = svc
		benchFix.hashes, benchFix.sites = bundleKeys(b, dir)
		os.RemoveAll(dir) // the service is fully in-memory once loaded
	})
	if benchFix.err != nil {
		b.Fatal(benchFix.err)
	}
	return benchFix.base, benchFix.hashes, benchFix.sites
}

// benchClient returns an HTTP client tuned for the hammer: enough idle
// connections that the workers reuse sockets instead of handshaking.
func benchClient(workers int) *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
	}
	return &http.Client{Transport: tr}
}

// hammer issues total requests across workers, each built by reqFor.
func hammer(b *testing.B, client *http.Client, workers, total int, reqFor func(i int) *http.Request) {
	b.Helper()
	var wg sync.WaitGroup
	per := total / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				res, err := client.Do(reqFor(w*per + i))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
				if res.StatusCode != http.StatusOK && res.StatusCode != http.StatusNotFound {
					b.Errorf("status %d", res.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkServeClassify measures hash-mode classify throughput over
// live HTTP: 16 parallel clients cycling the bundle's full canvas
// population.
func BenchmarkServeClassify(b *testing.B) {
	base, hashes, _ := benchBase(b)
	const workers, total = 16, 30000
	client := benchClient(workers)
	bodies := make([][]byte, len(hashes))
	for i, h := range hashes {
		bodies[i] = []byte(fmt.Sprintf(`{"hash":%q}`, h))
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		hammer(b, client, workers, total, func(i int) *http.Request {
			req, _ := http.NewRequest("POST", base+"/v1/classify", bytes.NewReader(bodies[i%len(bodies)]))
			req.Header.Set("Content-Type", "application/json")
			return req
		})
	}
	b.StopTimer()
	rate := float64(b.N*total) / b.Elapsed().Seconds()
	b.ReportMetric(rate, "lookups/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*total), "ns/lookup")
}

// BenchmarkServeMixedQPS is the acceptance benchmark: a production-like
// mix from 16 parallel clients — bulk classify batches carrying the
// verdict volume (that is what /v1/classify/batch exists for) plus
// single classify, cluster, site, block, and stats lookups — reported
// as individual verdict lookups per second. The target at Scale 0.2 is
// ≥50k lookups/s.
func BenchmarkServeMixedQPS(b *testing.B) {
	base, hashes, sites := benchBase(b)
	const workers = 16
	const batchSize = 64
	// Each round is 8 HTTP requests: 3 bulk batches + 5 singles.
	const lookupsPerRound = 3*batchSize + 5
	const rounds = 12 // per worker per iteration
	client := benchClient(workers)
	blockURL := base + "/v1/block?url=https://" + web.ActorHost(7) + "/beacon.js"

	// Pre-build rotating batch bodies so request construction isn't in
	// the measured path.
	batches := make([][]byte, 8)
	for j := range batches {
		hs := make([]string, batchSize)
		for k := range hs {
			hs[k] = hashes[(j*batchSize+k*7)%len(hashes)]
		}
		raw, err := json.Marshal(map[string][]string{"hashes": hs})
		if err != nil {
			b.Fatal(err)
		}
		batches[j] = raw
	}
	post := func(url string, body []byte) *http.Request {
		req, _ := http.NewRequest("POST", url, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		return req
	}
	get := func(url string) *http.Request {
		req, _ := http.NewRequest("GET", url, nil)
		return req
	}

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		hammer(b, client, workers, workers*rounds*8, func(i int) *http.Request {
			switch i % 8 {
			case 0, 3, 6:
				return post(base+"/v1/classify/batch", batches[i%len(batches)])
			case 1:
				return post(base+"/v1/classify", []byte(fmt.Sprintf(`{"hash":%q}`, hashes[i%len(hashes)])))
			case 2:
				return get(base + "/v1/cluster/" + hashes[i%len(hashes)])
			case 4:
				return get(base + "/v1/site/" + sites[i%len(sites)])
			case 5:
				return get(blockURL)
			default:
				return get(base + "/v1/stats")
			}
		})
	}
	b.StopTimer()
	lookups := b.N * workers * rounds * lookupsPerRound
	rate := float64(lookups) / b.Elapsed().Seconds()
	b.ReportMetric(rate, "lookups/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(lookups), "ns/lookup")
}
