package serve

import (
	"fmt"
	"strings"
)

// Banner renders the startup summary cmd/serve prints: everything an
// operator needs to confirm the right bundle is being served. It is a
// pure function of the loaded state — no wall-clock, no paths — so a
// golden test pins it for a fixed fixture.
func Banner(s *Service) string {
	var sb strings.Builder
	m := s.Bundle.Manifest
	st := s.Index.Stats()
	sb.WriteString("canvassing verdict service\n")
	fmt.Fprintf(&sb, "  bundle:    seed %d, scale %g", m.Seed, m.Scale)
	if len(m.Conditions) > 0 {
		fmt.Fprintf(&sb, ", conditions %s", strings.Join(m.Conditions, "+"))
	}
	fmt.Fprintf(&sb, ", %d events\n", st.EventsIndexed)
	fmt.Fprintf(&sb, "  index:     %d canvases (%d fingerprintable), %d sites (%d fingerprinting), %d clusters (%d attributed), %d shards\n",
		st.Canvases, st.FingerprintableCanvases, st.Sites, st.FingerprintingSites,
		st.Clusters, st.AttributedClusters, st.Shards)
	fmt.Fprintf(&sb, "  memo:      %d verdicts seeded from the event log\n", s.seeded)
	if s.Lists != nil {
		fmt.Fprintf(&sb, "  lists:     %s %d rules, %s %d rules, %s %d domains\n",
			s.Lists.EasyList.Name, s.Lists.EasyList.Len(),
			s.Lists.EasyPrivacy.Name, s.Lists.EasyPrivacy.Len(),
			s.Lists.Disconnect.Name, s.Lists.Disconnect.Len())
	} else {
		sb.WriteString("  lists:     unavailable (/v1/block disabled)\n")
	}
	if s.Snapshots != nil {
		fmt.Fprintf(&sb, "  snapshots: %d content-addressed bodies\n", s.Snapshots.Len())
	} else {
		sb.WriteString("  snapshots: none\n")
	}
	fmt.Fprintf(&sb, "  batching:  %s window, singleflight per key\n", s.batch.Window())
	sb.WriteString("  endpoints: POST /v1/classify[/batch] · GET /v1/cluster/{hash} · GET /v1/block · GET /v1/site/{domain} · GET /v1/stats\n")
	return sb.String()
}
