package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"canvassing/internal/blocklist"
	"canvassing/internal/detect"
	"canvassing/internal/netsim"
	"canvassing/internal/obs"
)

// maxClassifyBody bounds POST /v1/classify payloads. Real canvas data
// URLs are tens of KB; anything past 1 MiB is hostile.
const maxClassifyBody = 1 << 20

// ClassifyRequest is the POST /v1/classify body: a canvas hash, a full
// data URL, or both (the data URL wins — its hash is authoritative).
type ClassifyRequest struct {
	Hash    string `json:"hash,omitempty"`
	DataURL string `json:"data_url,omitempty"`
	// Anim is the extracting script's animation flag (heuristic 3);
	// only meaningful with DataURL.
	Anim bool `json:"anim,omitempty"`
}

// Heuristics is the per-heuristic breakdown of a classify verdict.
type Heuristics struct {
	LossyFormat     bool `json:"lossy_format"`
	SmallCanvas     bool `json:"small_canvas"`
	AnimationScript bool `json:"animation_script"`
	Undecodable     bool `json:"undecodable"`
}

// ClassifyResponse answers POST /v1/classify. Fields are fixed-order
// (no maps) so equal queries marshal to identical bytes.
type ClassifyResponse struct {
	Hash  string `json:"hash"`
	Known bool   `json:"known"`
	// Source is "index" for canvases the study recorded, "computed"
	// for fresh data URLs classified on demand.
	Source          string      `json:"source,omitempty"`
	Verdict         string      `json:"verdict,omitempty"`
	Fingerprintable bool        `json:"fingerprintable"`
	ExcludeReason   string      `json:"exclude_reason,omitempty"`
	Heuristics      *Heuristics `json:"heuristics,omitempty"`
	Format          string      `json:"format,omitempty"`
	Width           int         `json:"width,omitempty"`
	Height          int         `json:"height,omitempty"`
	Extractions     int         `json:"extractions,omitempty"`
	Conditions      []string    `json:"conditions,omitempty"`
	Sites           []string    `json:"sites,omitempty"`
	Scripts         []string    `json:"scripts,omitempty"`
	ClusterSize     int         `json:"cluster_size,omitempty"`
	Vendor          string      `json:"vendor,omitempty"`
}

// maxBatchItems bounds one POST /v1/classify/batch request.
const maxBatchItems = 1024

// BatchClassifyRequest is the bulk-lookup body: hashes resolved in
// order against the index. High-QPS clients use this to amortize the
// per-request HTTP cost over many verdicts.
type BatchClassifyRequest struct {
	Hashes []string `json:"hashes"`
}

// BatchClassifyResponse answers POST /v1/classify/batch; Results[i]
// answers Hashes[i].
type BatchClassifyResponse struct {
	Results []ClassifyResponse `json:"results"`
}

// ClusterMember is one site in a canvas group.
type ClusterMember struct {
	Site   string `json:"site"`
	Cohort string `json:"cohort,omitempty"`
}

// ClusterResponse answers GET /v1/cluster/{hash}.
type ClusterResponse struct {
	Hash            string          `json:"hash"`
	Size            int             `json:"size"`
	Vendor          string          `json:"vendor,omitempty"`
	Mechanism       string          `json:"mechanism,omitempty"`
	Members         []ClusterMember `json:"members"`
	Conditions      []string        `json:"conditions,omitempty"`
	Extractions     int             `json:"extractions"`
	Fingerprintable bool            `json:"fingerprintable"`
}

// ListVerdict is one filter list's answer for a URL.
type ListVerdict struct {
	List    string `json:"list"`
	Matched bool   `json:"matched"`
	Rule    string `json:"rule,omitempty"`
	// WouldBlock applies full ABP semantics (exceptions beat blocks).
	WouldBlock bool `json:"would_block"`
}

// DomainVerdict is the Disconnect-style domain list's answer.
type DomainVerdict struct {
	List   string `json:"list"`
	Listed bool   `json:"listed"`
}

// BlockResponse answers GET /v1/block.
type BlockResponse struct {
	URL         string        `json:"url"`
	Type        string        `json:"type"`
	PageHost    string        `json:"page_host,omitempty"`
	ThirdParty  bool          `json:"third_party"`
	Blocked     bool          `json:"blocked"`
	EasyList    ListVerdict   `json:"easylist"`
	EasyPrivacy ListVerdict   `json:"easyprivacy"`
	Disconnect  DomainVerdict `json:"disconnect"`
}

// ReasonCount is one exclusion reason's tally in a site summary.
type ReasonCount struct {
	Reason string `json:"reason"`
	Count  int    `json:"count"`
}

// SiteCondJSON is one crawl condition's evidence on a site.
type SiteCondJSON struct {
	Condition       string          `json:"condition"`
	Extractions     int             `json:"extractions"`
	Fingerprintable int             `json:"fingerprintable"`
	Excluded        []ReasonCount   `json:"excluded,omitempty"`
	BlockedScripts  []BlockedScript `json:"blocked_scripts,omitempty"`
	VisitOutcome    string          `json:"visit_outcome,omitempty"`
}

// SiteResponse answers GET /v1/site/{domain}.
type SiteResponse struct {
	Domain         string         `json:"domain"`
	Fingerprinting bool           `json:"fingerprinting"`
	Cohort         string         `json:"cohort,omitempty"`
	Conditions     []SiteCondJSON `json:"conditions"`
	Vendors        []VendorRef    `json:"vendors,omitempty"`
	Clusters       []string       `json:"clusters,omitempty"`
	Randomization  string         `json:"randomization,omitempty"`
}

// StatsResponse answers GET /v1/stats: the deterministic index summary
// serve -check probes for stable identifiers. Deliberately excludes
// anything configuration-dependent (shard count, batch window) so the
// payload is byte-identical across serving configurations.
type StatsResponse struct {
	Seed                    uint64   `json:"seed"`
	Scale                   float64  `json:"scale"`
	Conditions              []string `json:"conditions,omitempty"`
	Events                  int      `json:"events"`
	Canvases                int      `json:"canvases"`
	FingerprintableCanvases int      `json:"fingerprintable_canvases"`
	Sites                   int      `json:"sites"`
	FingerprintingSites     int      `json:"fingerprinting_sites"`
	Clusters                int      `json:"clusters"`
	AttributedClusters      int      `json:"attributed_clusters"`
	SeededVerdicts          int      `json:"seeded_verdicts"`
	TopCluster              string   `json:"top_cluster,omitempty"`
	TopSite                 string   `json:"top_site,omitempty"`
}

// Routes returns the verdict API endpoints, ready to append to the ops
// plane's route set.
func (s *Service) Routes() []obs.Route {
	return []obs.Route{
		{Pattern: "POST /v1/classify", Desc: "canvas hash or data-URL → verdict + heuristic breakdown (JSON body)",
			Handler: s.instrument(s.handleClassify)},
		{Pattern: "POST /v1/classify/batch", Desc: "bulk hash lookup: {\"hashes\": [...]} → verdicts in order",
			Handler: s.instrument(s.handleClassifyBatch)},
		{Pattern: "GET /v1/cluster/{hash}", Desc: "canvas group: members, cohorts, vendor attribution",
			Handler: s.instrument(s.handleCluster)},
		{Pattern: "GET /v1/block", Desc: "would the standard lists block this URL (?url=&type=&page=)",
			Handler: s.instrument(s.handleBlock)},
		{Pattern: "GET /v1/site/{domain}", Desc: "per-site prevalence summary",
			Handler: s.instrument(s.handleSite)},
		{Pattern: "GET /v1/stats", Desc: "index summary (deterministic; serve -check reads it)",
			Handler: s.instrument(s.handleStats)},
	}
}

// instrument wraps a handler with the request/error counters and the
// latency histogram.
func (s *Service) instrument(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.reqs.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		if sw.status >= 400 {
			s.errs.Inc()
		}
		s.latency.Observe(time.Since(start).Seconds())
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// marshal renders a response deterministically (indented; fixed-order
// struct fields, never maps).
func marshal(v any) ([]byte, int) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return []byte(fmt.Sprintf("marshal: %v", err)), http.StatusInternalServerError
	}
	return append(body, '\n'), http.StatusOK
}

// writeResponse emits a batched probe result.
func writeResponse(w http.ResponseWriter, body []byte, status int) {
	if status == http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func (s *Service) handleClassify(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxClassifyBody)
	var req ClassifyRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request body exceeds 1 MiB", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if req.Hash == "" && req.DataURL == "" {
		http.Error(w, "one of hash or data_url is required", http.StatusBadRequest)
		return
	}
	if len(req.DataURL) > maxClassifyBody {
		http.Error(w, "data_url exceeds 1 MiB", http.StatusRequestEntityTooLarge)
		return
	}
	// The batch key discriminates hash-mode from data-mode: the two
	// return different payload shapes for the same canvas (hash-mode
	// reports the study's recorded verdict, data-mode a live
	// classification under the caller's anim flag).
	var key string
	var probe func() ([]byte, int)
	if req.DataURL != "" {
		hash := detect.HashDataURL(req.DataURL)
		key = fmt.Sprintf("classify\x00data\x00%s\x00%v", hash, req.Anim)
		probe = func() ([]byte, int) { return marshal(s.classifyData(hash, req.DataURL, req.Anim)) }
	} else {
		key = "classify\x00hash\x00" + req.Hash
		probe = func() ([]byte, int) { return marshal(s.classifyHash(req.Hash)) }
	}
	body, status := s.batch.Do(key, probe)
	writeResponse(w, body, status)
}

// handleClassifyBatch is the bulk lookup path: one HTTP round trip,
// up to maxBatchItems index probes. Identical batches inside a window
// coalesce like any other key.
func (s *Service) handleClassifyBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxClassifyBody)
	var req BatchClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request body exceeds 1 MiB", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Hashes) == 0 {
		http.Error(w, "hashes is required and must be non-empty", http.StatusBadRequest)
		return
	}
	if len(req.Hashes) > maxBatchItems {
		http.Error(w, fmt.Sprintf("batch exceeds %d hashes", maxBatchItems), http.StatusBadRequest)
		return
	}
	key := "classify.batch\x00" + strings.Join(req.Hashes, "\x00")
	body, status := s.batch.Do(key, func() ([]byte, int) {
		resp := BatchClassifyResponse{Results: make([]ClassifyResponse, len(req.Hashes))}
		for i, h := range req.Hashes {
			resp.Results[i] = s.classifyHash(h)
		}
		return marshal(resp)
	})
	writeResponse(w, body, status)
}

// classifyHash answers a hash-only query from the index record.
func (s *Service) classifyHash(hash string) ClassifyResponse {
	rec := s.Index.Canvas(hash)
	if rec == nil {
		return ClassifyResponse{Hash: hash}
	}
	resp := ClassifyResponse{
		Hash:            hash,
		Known:           true,
		Source:          "index",
		Fingerprintable: rec.Fingerprintable,
		ExcludeReason:   string(rec.Exclude),
		Format:          rec.Format,
		Width:           rec.W,
		Height:          rec.H,
		Extractions:     rec.Extractions,
		Conditions:      rec.Conditions,
		Sites:           rec.Sites,
		Scripts:         rec.ScriptURLs,
		ClusterSize:     len(rec.ClusterSites),
		Vendor:          rec.Vendor,
	}
	resp.Verdict, resp.Heuristics = verdictFields(rec.Fingerprintable, rec.Exclude)
	return resp
}

// classifyData classifies a full data URL through the seeded memo:
// canvases the study saw answer from the cache, fresh ones compute
// once and stay cached.
func (s *Service) classifyData(hash, dataURL string, anim bool) ClassifyResponse {
	v := s.Memo.GetOrCompute(detect.MemoKey{Hash: hash, Anim: anim}, func() detect.Verdict {
		return detect.Classify(dataURL, anim)
	})
	resp := ClassifyResponse{
		Hash:            hash,
		Known:           true,
		Source:          "computed",
		Fingerprintable: v.Fingerprintable,
		ExcludeReason:   string(v.Exclude),
		Format:          string(v.Format),
		Width:           v.W,
		Height:          v.H,
	}
	if rec := s.Index.Canvas(hash); rec != nil {
		resp.Source = "index"
		resp.Extractions = rec.Extractions
		resp.Conditions = rec.Conditions
		resp.Sites = rec.Sites
		resp.Scripts = rec.ScriptURLs
		resp.ClusterSize = len(rec.ClusterSites)
		resp.Vendor = rec.Vendor
	}
	resp.Verdict, resp.Heuristics = verdictFields(v.Fingerprintable, v.Exclude)
	return resp
}

func verdictFields(fingerprintable bool, reason detect.Reason) (string, *Heuristics) {
	h := &Heuristics{
		LossyFormat:     reason == detect.LossyFormat,
		SmallCanvas:     reason == detect.SmallCanvas,
		AnimationScript: reason == detect.AnimationScript,
		Undecodable:     reason == detect.Undecodable,
	}
	if fingerprintable {
		return "fingerprintable", h
	}
	return "excluded", h
}

func (s *Service) handleCluster(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if hash == "" {
		http.Error(w, "missing cluster hash", http.StatusBadRequest)
		return
	}
	body, status := s.batch.Do("cluster\x00"+hash, func() ([]byte, int) {
		rec := s.Index.Canvas(hash)
		if rec == nil || len(rec.ClusterSites) == 0 {
			return []byte("unknown cluster\n"), http.StatusNotFound
		}
		resp := ClusterResponse{
			Hash:            hash,
			Size:            len(rec.ClusterSites),
			Vendor:          rec.Vendor,
			Mechanism:       rec.Mechanism,
			Conditions:      rec.Conditions,
			Extractions:     rec.Extractions,
			Fingerprintable: rec.Fingerprintable,
		}
		for _, site := range rec.ClusterSites {
			resp.Members = append(resp.Members, ClusterMember{Site: site, Cohort: rec.CohortOf[site]})
		}
		return marshal(resp)
	})
	writeResponse(w, body, status)
}

func (s *Service) handleBlock(w http.ResponseWriter, r *http.Request) {
	rawURL := r.URL.Query().Get("url")
	if rawURL == "" {
		http.Error(w, "url query parameter is required", http.StatusBadRequest)
		return
	}
	typ := blocklist.TypeScript
	if t := r.URL.Query().Get("type"); t != "" {
		switch blocklist.RequestType(t) {
		case blocklist.TypeScript, blocklist.TypeDocument, blocklist.TypeSubdocument,
			blocklist.TypeImage, blocklist.TypeOther:
			typ = blocklist.RequestType(t)
		default:
			http.Error(w, fmt.Sprintf("unknown resource type %q", t), http.StatusBadRequest)
			return
		}
	}
	page := r.URL.Query().Get("page")
	if s.Lists == nil {
		http.Error(w, "blocklists unavailable for this bundle", http.StatusNotFound)
		return
	}
	u, err := netsim.ParseURL(rawURL)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad url: %v", err), http.StatusBadRequest)
		return
	}
	key := "block\x00" + rawURL + "\x00" + string(typ) + "\x00" + page
	body, status := s.batch.Do(key, func() ([]byte, int) {
		req := blocklist.Request{
			URL:      rawURL,
			Type:     typ,
			PageHost: page,
			// Without a page context, assume third-party — the posture
			// under which tracker rules ($third-party) apply.
			ThirdParty: page == "" || !netsim.SameSite(u.Host, page),
		}
		resp := BlockResponse{
			URL: rawURL, Type: string(typ), PageHost: page, ThirdParty: req.ThirdParty,
			EasyList:    listVerdict(s.Lists.EasyList, req),
			EasyPrivacy: listVerdict(s.Lists.EasyPrivacy, req),
			Disconnect: DomainVerdict{
				List:   s.Lists.Disconnect.Name,
				Listed: s.Lists.Disconnect.ContainsHost(u.Host),
			},
		}
		resp.Blocked = resp.EasyList.WouldBlock || resp.EasyPrivacy.WouldBlock || resp.Disconnect.Listed
		return marshal(resp)
	})
	writeResponse(w, body, status)
}

func listVerdict(l *blocklist.List, req blocklist.Request) ListVerdict {
	v := ListVerdict{List: l.Name}
	if rule := l.Match(req); rule != nil {
		v.Matched = true
		v.Rule = rule.Raw
		v.WouldBlock = l.ShouldBlock(req)
	}
	return v
}

func (s *Service) handleSite(w http.ResponseWriter, r *http.Request) {
	domain := r.PathValue("domain")
	if domain == "" {
		http.Error(w, "missing site domain", http.StatusBadRequest)
		return
	}
	body, status := s.batch.Do("site\x00"+domain, func() ([]byte, int) {
		rec := s.Index.Site(domain)
		if rec == nil {
			return []byte("unknown site\n"), http.StatusNotFound
		}
		return marshal(siteResponse(rec))
	})
	writeResponse(w, body, status)
}

func siteResponse(rec *SiteRecord) SiteResponse {
	resp := SiteResponse{
		Domain:         rec.Domain,
		Fingerprinting: rec.Fingerprinting(),
		Cohort:         rec.Cohort,
		Vendors:        rec.Vendors,
		Clusters:       rec.Clusters,
		Randomization:  rec.Randomization,
	}
	for _, cond := range rec.CondNames {
		cs := rec.Conditions[cond]
		cj := SiteCondJSON{
			Condition:       cond,
			Extractions:     cs.Extractions,
			Fingerprintable: cs.Fingerprintable,
			BlockedScripts:  cs.Blocked,
			VisitOutcome:    cs.VisitOutcome,
		}
		reasons := make([]string, 0, len(cs.Excluded))
		for reason := range cs.Excluded {
			reasons = append(reasons, string(reason))
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			cj.Excluded = append(cj.Excluded, ReasonCount{Reason: reason, Count: cs.Excluded[detect.Reason(reason)]})
		}
		resp.Conditions = append(resp.Conditions, cj)
	}
	return resp
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	body, status := s.batch.Do("stats", func() ([]byte, int) {
		st := s.Index.Stats()
		return marshal(StatsResponse{
			Seed:                    s.Bundle.Manifest.Seed,
			Scale:                   s.Bundle.Manifest.Scale,
			Conditions:              st.Conditions,
			Events:                  st.EventsIndexed,
			Canvases:                st.Canvases,
			FingerprintableCanvases: st.FingerprintableCanvases,
			Sites:                   st.Sites,
			FingerprintingSites:     st.FingerprintingSites,
			Clusters:                st.Clusters,
			AttributedClusters:      st.AttributedClusters,
			SeededVerdicts:          s.seeded,
			TopCluster:              st.TopCluster,
			TopSite:                 st.TopSite,
		})
	})
	writeResponse(w, body, status)
}
