// The serve tests run against a real (small) study: the fixture runs
// the full control+abp pipeline once per test binary, writes the
// bundle, and every test loads services over it. External test package
// so the fixture can use the root canvassing package like the binaries
// do.
package serve_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"canvassing"
	"canvassing/internal/blocklist"
	"canvassing/internal/bundle"
	"canvassing/internal/canvas"
	"canvassing/internal/machine"
	"canvassing/internal/obs/event"
	"canvassing/internal/serve"
	"canvassing/internal/web"
)

var fixture struct {
	once  sync.Once
	dir   string
	lists *blocklist.StandardLists
	err   error
}

func TestMain(m *testing.M) {
	code := m.Run()
	if fixture.dir != "" {
		os.RemoveAll(fixture.dir)
	}
	os.Exit(code)
}

// fixtureDir runs the shared study (seed 11, the serve-smoke
// parameters) and returns its bundle directory.
func fixtureDir(tb testing.TB) string {
	tb.Helper()
	fixture.once.Do(func() {
		dir, err := os.MkdirTemp("", "serve-fixture")
		if err != nil {
			fixture.err = err
			return
		}
		st := canvassing.Run(canvassing.Options{
			Seed: 11, Scale: 0.02, Workers: 2, AnalysisWorkers: 4, WithAdblock: true,
		})
		if err := st.WriteBundle(dir); err != nil {
			fixture.err = err
			return
		}
		fixture.dir = dir
		fixture.lists = canvassing.ListsForSeed(11)
	})
	if fixture.err != nil {
		tb.Fatal(fixture.err)
	}
	return fixture.dir
}

// fixtureService loads a service over the shared bundle. The blocklists
// are built once and shared: they are read-only after construction.
func fixtureService(tb testing.TB, shards int, window time.Duration) *serve.Service {
	tb.Helper()
	svc, err := serve.Load(serve.Config{
		Dir:      fixtureDir(tb),
		Shards:   shards,
		Window:   window,
		ListsFor: func(uint64) *blocklist.StandardLists { return fixture.lists },
	})
	if err != nil {
		tb.Fatal(err)
	}
	return svc
}

// apiMux mounts just the verdict API routes (no ops plane, no listener)
// for in-process request tests.
func apiMux(s *serve.Service) *http.ServeMux {
	mux := http.NewServeMux()
	for _, r := range s.Routes() {
		mux.Handle(r.Pattern, r.Handler)
	}
	return mux
}

// hit issues one in-process request and returns status and body.
func hit(mux *http.ServeMux, method, target string, body []byte) (int, string) {
	req := httptest.NewRequest(method, target, bytes.NewReader(body))
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// bundleKeys enumerates every canvas hash and site domain the bundle's
// event log mentions — the full query surface for invariance sweeps.
func bundleKeys(tb testing.TB, dir string) (hashes, sites []string) {
	tb.Helper()
	b, err := bundle.Load(dir)
	if err != nil {
		tb.Fatal(err)
	}
	hs, ss := map[string]bool{}, map[string]bool{}
	for i := range b.Events {
		e := &b.Events[i]
		if e.Kind == event.DetectClassify || e.Kind == event.ClusterAssign {
			hs[e.Subject] = true
		}
		if e.Site != "" {
			ss[e.Site] = true
		}
	}
	for h := range hs {
		hashes = append(hashes, h)
	}
	for s := range ss {
		sites = append(sites, s)
	}
	sort.Strings(hashes)
	sort.Strings(sites)
	return hashes, sites
}

// renderAll exercises every endpoint over the full key surface and
// returns request → "status\nbody" — the byte-level serving transcript
// the invariance tests compare across configurations.
func renderAll(tb testing.TB, svc *serve.Service, hashes, sites []string) map[string]string {
	tb.Helper()
	mux := apiMux(svc)
	out := map[string]string{}
	record := func(key string, status int, body string) {
		out[key] = fmt.Sprintf("%d\n%s", status, body)
	}
	status, body := hit(mux, "GET", "/v1/stats", nil)
	record("stats", status, body)
	batch, err := json.Marshal(map[string][]string{"hashes": hashes})
	if err != nil {
		tb.Fatal(err)
	}
	status, body = hit(mux, "POST", "/v1/classify/batch", batch)
	record("batch", status, body)
	for _, h := range hashes {
		status, body = hit(mux, "POST", "/v1/classify", []byte(fmt.Sprintf(`{"hash":%q}`, h)))
		record("classify "+h, status, body)
		status, body = hit(mux, "GET", "/v1/cluster/"+h, nil)
		record("cluster "+h, status, body)
	}
	for _, s := range sites {
		status, body = hit(mux, "GET", "/v1/site/"+s, nil)
		record("site "+s, status, body)
	}
	for _, u := range []string{
		"https://" + web.ActorHost(7) + "/beacon.js",
		"https://cdn.example.com/app.js",
	} {
		status, body = hit(mux, "GET", "/v1/block?url="+u, nil)
		record("block "+u, status, body)
	}
	return out
}

// TestServeShardInvariance is the determinism oracle for the read
// indexes: every response must be byte-identical whether the index has
// 1 shard or 8, and whatever GOMAXPROCS the process runs at. A map
// iteration leaking into shard assignment or record finalization shows
// up here as a diff.
func TestServeShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-surface sweep over a real study bundle")
	}
	dir := fixtureDir(t)
	hashes, sites := bundleKeys(t, dir)
	if len(hashes) == 0 || len(sites) == 0 {
		t.Fatal("fixture bundle has no keys to sweep")
	}

	var ref map[string]string
	var refLabel string
	for _, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 8} {
			label := fmt.Sprintf("procs=%d shards=%d", procs, shards)
			svc := fixtureService(t, shards, 0)
			if svc.Index.Shards() != shards {
				t.Fatalf("%s: index built with %d shards", label, svc.Index.Shards())
			}
			got := renderAll(t, svc, hashes, sites)
			if ref == nil {
				ref, refLabel = got, label
				continue
			}
			if len(got) != len(ref) {
				t.Fatalf("%s: %d responses, %s had %d", label, len(got), refLabel, len(ref))
			}
			for key, want := range ref {
				if got[key] != want {
					t.Fatalf("%s: response for %q differs from %s:\n--- %s\n%s\n--- %s\n%s",
						label, key, refLabel, refLabel, want, label, got[key])
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestServeBundleInvariance hammers a live server — all endpoints,
// including data-URL classifications that exercise the memo's compute
// path — and requires every on-disk bundle byte to survive untouched.
// Serving is read-only; this is the proof.
func TestServeBundleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("live-HTTP hammer over a real study bundle")
	}
	dir := fixtureDir(t)
	before := hashTree(t, dir)

	svc := fixtureService(t, 0, 0)
	plane, err := svc.Start("127.0.0.1:0", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	base := plane.URL()

	hashes, sites := bundleKeys(t, dir)
	fresh := freshDataURL(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				h := hashes[(w*41+i)%len(hashes)]
				s := sites[(w*17+i)%len(sites)]
				get(t, base+"/v1/stats")
				post(t, base+"/v1/classify", fmt.Sprintf(`{"hash":%q}`, h))
				post(t, base+"/v1/classify", fmt.Sprintf(`{"data_url":%q,"anim":%v}`, fresh, i%2 == 0))
				get(t, base+"/v1/cluster/"+h)
				get(t, base+"/v1/site/"+s)
				get(t, base+"/v1/block?url=https://"+web.ActorHost(7)+"/beacon.js")
			}
		}(w)
	}
	wg.Wait()

	after := hashTree(t, dir)
	if len(before) != len(after) {
		t.Fatalf("bundle file set changed: %d files before, %d after", len(before), len(after))
	}
	for name, sum := range before {
		if after[name] != sum {
			t.Fatalf("serving mutated bundle file %s", name)
		}
	}
}

// TestServeChurnRace is the concurrency hammer `make race` runs: 32
// goroutines across every endpoint while the batching window rotates at
// ~100µs, so flights constantly expire mid-join. Run with -race.
func TestServeChurnRace(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency hammer over a real study bundle")
	}
	dir := fixtureDir(t)
	hashes, sites := bundleKeys(t, dir)
	svc := fixtureService(t, 0, 100*time.Microsecond)
	mux := apiMux(svc)
	fresh := freshDataURL(t)

	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				h := hashes[(g*13+i)%len(hashes)]
				s := sites[(g*7+i)%len(sites)]
				var status int
				switch i % 7 {
				case 6:
					status, _ = hit(mux, "POST", "/v1/classify/batch",
						[]byte(fmt.Sprintf(`{"hashes":[%q,%q,"unknown"]}`, h, hashes[(g+i)%len(hashes)])))
				case 0:
					status, _ = hit(mux, "POST", "/v1/classify", []byte(fmt.Sprintf(`{"hash":%q}`, h)))
				case 1:
					status, _ = hit(mux, "POST", "/v1/classify", []byte(fmt.Sprintf(`{"data_url":%q}`, fresh)))
				case 2:
					status, _ = hit(mux, "GET", "/v1/cluster/"+h, nil)
				case 3:
					status, _ = hit(mux, "GET", "/v1/site/"+s, nil)
				case 4:
					status, _ = hit(mux, "GET", "/v1/block?url=https://"+web.ActorHost(7)+"/t.js", nil)
				case 5:
					status, _ = hit(mux, "GET", "/v1/stats", nil)
				}
				if status != http.StatusOK && status != http.StatusNotFound {
					t.Errorf("goroutine %d request %d: status %d", g, i, status)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	probes, coalesced := svc.Batcher().Counts()
	if probes == 0 {
		t.Fatal("no probes recorded — batcher bypassed?")
	}
	t.Logf("churn: %d probes, %d coalesced", probes, coalesced)
}

// TestServeMemoSeeded checks the classify fast path: a hash the study
// recorded answers from the index, and re-presenting its exact payload
// as a data URL hits the seeded memo rather than recomputing.
func TestServeMemoSeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a real study bundle")
	}
	svc := fixtureService(t, 0, 0)
	if svc.SeededVerdicts() == 0 {
		t.Fatal("no verdicts seeded from the event log")
	}
	st := svc.Index.Stats()
	if st.TopCluster == "" || st.TopSite == "" {
		t.Fatalf("stats missing deterministic probes: %+v", st)
	}
	mux := apiMux(svc)
	status, body := hit(mux, "POST", "/v1/classify", []byte(fmt.Sprintf(`{"hash":%q}`, st.TopCluster)))
	if status != http.StatusOK {
		t.Fatalf("classify top cluster: %d %s", status, body)
	}
	for _, want := range []string{`"known": true`, `"source": "index"`} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Fatalf("classify response missing %s:\n%s", want, body)
		}
	}
	// Unknown hash: known=false, still 200 (a verdict of "never seen").
	status, body = hit(mux, "POST", "/v1/classify", []byte(`{"hash":"ffff"}`))
	if status != http.StatusOK || !bytes.Contains([]byte(body), []byte(`"known": false`)) {
		t.Fatalf("unknown hash: %d %s", status, body)
	}
}

// hashTree hashes every regular file under dir (relative name → hex).
func hashTree(tb testing.TB, dir string) map[string]string {
	tb.Helper()
	out := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = fmt.Sprintf("%x", sha256.Sum256(raw))
		return nil
	})
	if err != nil {
		tb.Fatal(err)
	}
	return out
}

// freshDataURL renders a canvas payload the fixture study never saw.
func freshDataURL(tb testing.TB) string {
	tb.Helper()
	e := canvas.New(machine.Intel())
	e.SetWidth(137)
	e.SetHeight(43)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#123456")
	ctx.FillRect(0, 0, 137, 43)
	return e.ToDataURL("", 0)
}

func get(tb testing.TB, url string) {
	tb.Helper()
	res, err := http.Get(url)
	if err != nil {
		tb.Error(err)
		return
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
}

func post(tb testing.TB, url, body string) {
	tb.Helper()
	res, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		tb.Error(err)
		return
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
}
