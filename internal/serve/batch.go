package serve

import (
	"sync"
	"time"
)

// DefaultWindow is the batching window when Config.Window <= 0: long
// enough that a hot key arriving at production rates coalesces into
// one index probe per window, short enough to be invisible next to
// network latency.
const DefaultWindow = 2 * time.Millisecond

// flight is one in-window computation of a response. Joiners wait on
// done and read the immutable value the winner stored.
type flight struct {
	done   chan struct{}
	body   []byte
	status int
}

// Batcher coalesces concurrent identical lookups: all requests for the
// same key inside one time window share a single probe (singleflight),
// and the winner's response is reused for the rest of the window
// (batching). Responses must be immutable once produced — handlers
// store fully marshaled bytes, never live pointers into the index.
//
// Rotation is lazy: the first Do after the window elapses clears the
// flight table under the mutex. No background goroutine, so an idle
// server costs nothing and tests can spin the window as fast as they
// like.
type Batcher struct {
	window time.Duration

	mu        sync.Mutex
	epoch     time.Time
	flights   map[string]*flight
	probes    uint64
	coalesced uint64
}

// NewBatcher returns a batcher with the given window (DefaultWindow
// when window <= 0).
func NewBatcher(window time.Duration) *Batcher {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Batcher{window: window, flights: map[string]*flight{}}
}

// Window returns the configured batching window.
func (b *Batcher) Window() time.Duration { return b.window }

// Do returns probe()'s response for key, coalescing with any other Do
// of the same key in the current window. Exactly one caller per
// (key, window) runs probe; everyone else waits for (or immediately
// reads) its result.
func (b *Batcher) Do(key string, probe func() (body []byte, status int)) ([]byte, int) {
	now := time.Now()
	b.mu.Lock()
	if now.Sub(b.epoch) >= b.window {
		b.epoch = now
		b.flights = map[string]*flight{}
	}
	if f, ok := b.flights[key]; ok {
		b.coalesced++
		b.mu.Unlock()
		<-f.done
		return f.body, f.status
	}
	f := &flight{done: make(chan struct{})}
	b.flights[key] = f
	b.probes++
	b.mu.Unlock()
	f.body, f.status = probe()
	close(f.done)
	return f.body, f.status
}

// Counts reports how many Do calls probed and how many coalesced onto
// another caller's probe.
func (b *Batcher) Counts() (probes, coalesced uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.probes, b.coalesced
}
