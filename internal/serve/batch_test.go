package serve_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"canvassing/internal/serve"
)

func TestBatcherCoalescesWithinWindow(t *testing.T) {
	b := serve.NewBatcher(time.Hour) // never rotates during the test
	var computed atomic.Int64
	release := make(chan struct{})

	const callers = 16
	var wg sync.WaitGroup
	bodies := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, status := b.Do("hot", func() ([]byte, int) {
				computed.Add(1)
				<-release // hold the flight open until everyone has joined
				return []byte("payload"), 200
			})
			if status != 200 {
				t.Errorf("caller %d: status %d", i, status)
			}
			bodies[i] = string(body)
		}(i)
	}
	// Wait until every caller has either started the probe or joined it.
	for {
		probes, coalesced := b.Counts()
		if probes+coalesced == callers {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	if n := computed.Load(); n != 1 {
		t.Fatalf("probe ran %d times, want 1", n)
	}
	probes, coalesced := b.Counts()
	if probes != 1 || coalesced != callers-1 {
		t.Fatalf("counts = (%d probes, %d coalesced), want (1, %d)", probes, coalesced, callers-1)
	}
	for i, body := range bodies {
		if body != "payload" {
			t.Fatalf("caller %d got %q", i, body)
		}
	}
}

func TestBatcherRotatesAfterWindow(t *testing.T) {
	b := serve.NewBatcher(time.Nanosecond)
	var computed atomic.Int64
	probe := func() ([]byte, int) {
		computed.Add(1)
		return []byte("x"), 200
	}
	b.Do("k", probe)
	time.Sleep(time.Millisecond) // comfortably past the window
	b.Do("k", probe)
	if n := computed.Load(); n != 2 {
		t.Fatalf("probe ran %d times across two windows, want 2", n)
	}
}

func TestBatcherDistinctKeysProbeSeparately(t *testing.T) {
	b := serve.NewBatcher(time.Hour)
	var computed atomic.Int64
	probe := func() ([]byte, int) {
		computed.Add(1)
		return nil, 200
	}
	b.Do("a", probe)
	b.Do("b", probe)
	if n := computed.Load(); n != 2 {
		t.Fatalf("distinct keys shared a probe: %d runs", n)
	}
}

func TestBatcherDefaultWindow(t *testing.T) {
	if got := serve.NewBatcher(0).Window(); got != serve.DefaultWindow {
		t.Fatalf("default window = %s, want %s", got, serve.DefaultWindow)
	}
	if got := serve.NewBatcher(5 * time.Millisecond).Window(); got != 5*time.Millisecond {
		t.Fatalf("window not honored: %s", got)
	}
}

// TestBatcherErrorStatusShared pins that non-200 probe results coalesce
// too: a 404 computed once is the window's answer for everyone.
func TestBatcherErrorStatusShared(t *testing.T) {
	b := serve.NewBatcher(time.Hour)
	body, status := b.Do("missing", func() ([]byte, int) { return []byte("unknown site\n"), 404 })
	if status != 404 {
		t.Fatalf("status %d", status)
	}
	body2, status2 := b.Do("missing", func() ([]byte, int) {
		t.Fatal("second probe must coalesce")
		return nil, 0
	})
	if status2 != 404 || string(body2) != string(body) {
		t.Fatalf("coalesced result differs: %d %q", status2, body2)
	}
}
