package serve_test

import (
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"canvassing/internal/serve"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// golden compares got to testdata/<name>, rewriting it under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/serve -run %s -update` to create it)", err, t.Name())
	}
	if got != string(want) {
		t.Fatalf("%s drifted from golden file (re-run with -update if intended)\n--- want\n%s--- got\n%s", name, want, got)
	}
}

// TestSiteResponseGolden pins the exact /v1/site JSON for the fixture
// study's top fingerprinting site — field order, indentation, and the
// per-condition evidence a dashboard would parse.
func TestSiteResponseGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a real study bundle")
	}
	svc := fixtureService(t, 0, 0)
	top := svc.Index.Stats().TopSite
	if top == "" {
		t.Fatal("fixture has no top fingerprinting site")
	}
	status, body := hit(apiMux(svc), "GET", "/v1/site/"+top, nil)
	if status != http.StatusOK {
		t.Fatalf("GET /v1/site/%s: %d", top, status)
	}
	golden(t, "site_top.golden", body)
}

// TestBannerGolden pins the startup banner for the fixture bundle: the
// operator-facing summary cmd/serve prints must stay deterministic.
func TestBannerGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a real study bundle")
	}
	svc := fixtureService(t, 0, 0)
	golden(t, "banner.golden", serve.Banner(svc))
}
