package detect

import (
	"testing"

	"canvassing/internal/canvas"
	"canvassing/internal/crawler"
	"canvassing/internal/imaging"
	"canvassing/internal/machine"
	"canvassing/internal/obs/event"
	"canvassing/internal/web"
)

// makeDataURL renders a simple canvas and returns its data URL.
func makeDataURL(t *testing.T, w, h int, format string) string {
	t.Helper()
	e := canvas.New(machine.Intel())
	e.SetWidth(w)
	e.SetHeight(h)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#a1b2c3")
	ctx.FillRect(0, 0, float64(w), float64(h))
	return e.ToDataURL(format, 0)
}

func pageWith(extractions []crawler.Extraction, methods map[string]map[string]bool) *crawler.PageResult {
	if methods == nil {
		methods = map[string]map[string]bool{}
	}
	return &crawler.PageResult{
		Domain:        "t.example",
		Cohort:        web.Popular,
		OK:            true,
		Extractions:   extractions,
		ScriptMethods: methods,
	}
}

func TestPNGLargeIsFingerprintable(t *testing.T) {
	u := makeDataURL(t, 200, 50, "")
	sc := AnalyzePage(pageWith([]crawler.Extraction{{ScriptURL: "https://x.com/fp.js", DataURL: u}}, nil))
	if len(sc.All) != 1 {
		t.Fatal("one canvas")
	}
	c := sc.All[0]
	if !c.Fingerprintable || c.Exclude != None {
		t.Fatalf("should be fingerprintable: %+v", c.Exclude)
	}
	if c.W != 200 || c.H != 50 || c.Format != imaging.PNG {
		t.Fatalf("metadata: %+v", c)
	}
	if c.Hash == "" || c.Hash != HashDataURL(u) {
		t.Fatal("hash")
	}
}

func TestLossyFormatsExcluded(t *testing.T) {
	for _, f := range []string{"image/webp", "image/jpeg"} {
		u := makeDataURL(t, 200, 50, f)
		sc := AnalyzePage(pageWith([]crawler.Extraction{{ScriptURL: "s", DataURL: u}}, nil))
		if sc.All[0].Fingerprintable || sc.All[0].Exclude != LossyFormat {
			t.Fatalf("%s should be lossy-excluded: %+v", f, sc.All[0])
		}
	}
}

func TestSmallCanvasExcluded(t *testing.T) {
	cases := []struct {
		w, h int
		want Reason
	}{
		{15, 100, SmallCanvas},
		{100, 15, SmallCanvas},
		{12, 12, SmallCanvas},
		{16, 16, None},
		{1, 1, SmallCanvas},
	}
	for _, c := range cases {
		u := makeDataURL(t, c.w, c.h, "")
		sc := AnalyzePage(pageWith([]crawler.Extraction{{ScriptURL: "s", DataURL: u}}, nil))
		if sc.All[0].Exclude != c.want {
			t.Fatalf("%dx%d: got %q want %q", c.w, c.h, sc.All[0].Exclude, c.want)
		}
	}
}

func TestAnimationScriptExcluded(t *testing.T) {
	u := makeDataURL(t, 200, 50, "")
	methods := map[string]map[string]bool{
		"https://x.com/editor.js": {"save": true, "restore": true, "fillRect": true},
		"https://x.com/fp.js":     {"fillText": true, "toDataURL": true},
	}
	sc := AnalyzePage(pageWith([]crawler.Extraction{
		{ScriptURL: "https://x.com/editor.js", DataURL: u},
		{ScriptURL: "https://x.com/fp.js", DataURL: u},
	}, methods))
	if sc.All[0].Exclude != AnimationScript {
		t.Fatalf("editor script canvas: %q", sc.All[0].Exclude)
	}
	if !sc.All[1].Fingerprintable {
		t.Fatal("fp script canvas should survive")
	}
}

func TestUndecodable(t *testing.T) {
	sc := AnalyzePage(pageWith([]crawler.Extraction{{ScriptURL: "s", DataURL: "data:image/png;base64,!!!"}}, nil))
	if sc.All[0].Exclude != Undecodable {
		t.Fatal("garbage should be undecodable")
	}
	sc = AnalyzePage(pageWith([]crawler.Extraction{{ScriptURL: "s", DataURL: "nonsense"}}, nil))
	if sc.All[0].Exclude != Undecodable {
		t.Fatal("non-data-url should be undecodable")
	}
}

func TestWebPSimDimensionsRecovered(t *testing.T) {
	u := makeDataURL(t, 40, 30, "image/webp")
	sc := AnalyzePage(pageWith([]crawler.Extraction{{ScriptURL: "s", DataURL: u}}, nil))
	if sc.All[0].W != 40 || sc.All[0].H != 30 {
		t.Fatalf("webp dims: %dx%d", sc.All[0].W, sc.All[0].H)
	}
}

func TestSiteLevelHelpers(t *testing.T) {
	fpURL := makeDataURL(t, 100, 100, "")
	smallURL := makeDataURL(t, 4, 4, "")
	both := AnalyzePage(pageWith([]crawler.Extraction{
		{ScriptURL: "a", DataURL: fpURL},
		{ScriptURL: "b", DataURL: smallURL},
	}, nil))
	if !both.HasFingerprinting() || both.FullyExcluded() {
		t.Fatal("site with fp canvas")
	}
	if len(both.Fingerprintable()) != 1 {
		t.Fatal("one fingerprintable")
	}
	onlySmall := AnalyzePage(pageWith([]crawler.Extraction{{ScriptURL: "b", DataURL: smallURL}}, nil))
	if onlySmall.HasFingerprinting() || !onlySmall.FullyExcluded() {
		t.Fatal("fully-excluded site")
	}
	empty := AnalyzePage(pageWith(nil, nil))
	if empty.FullyExcluded() || empty.HasFingerprinting() {
		t.Fatal("empty site is neither")
	}
}

func TestEndToEndRealCrawlYield(t *testing.T) {
	w := web.Generate(web.Config{Seed: 31, Scale: 0.03, TrancoMax: 1_000_000})
	res := crawler.Crawl(w, w.CohortSites(web.Popular), crawler.DefaultConfig())
	sites := AnalyzeAll(res.Pages)
	st := ComputeStats(sites)
	if st.SitesCrawledOK == 0 || st.SitesFingerprinting == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	// §3.2: the great majority of extractions are fingerprintable.
	if f := st.FingerprintableFraction(); f < 0.6 || f > 0.98 {
		t.Fatalf("fingerprintable fraction = %.2f, want ~0.83", f)
	}
	// §4.1: prevalence around 12.7% for the popular cohort.
	if p := st.PrevalenceFraction(); p < 0.07 || p > 0.20 {
		t.Fatalf("prevalence = %.3f, want ~0.127", p)
	}
	// Benign probes produced excluded canvases of every flavor.
	if st.ByReason[LossyFormat] == 0 {
		t.Fatal("expected webp/jpeg exclusions")
	}
	if st.ByReason[SmallCanvas] == 0 {
		t.Fatal("expected small-canvas exclusions")
	}
	if st.ByReason[AnimationScript] == 0 {
		t.Fatal("expected animation-script exclusions")
	}
	if st.SitesFullyExcluded == 0 {
		t.Fatal("expected some fully-excluded sites")
	}
}

func TestHashDataURLStable(t *testing.T) {
	if HashDataURL("abc") != HashDataURL("abc") {
		t.Fatal("stable")
	}
	if HashDataURL("abc") == HashDataURL("abd") {
		t.Fatal("distinct")
	}
	if len(HashDataURL("x")) != 64 {
		t.Fatal("sha256 hex length")
	}
}

func TestFailedPageSkippedInStats(t *testing.T) {
	p := &crawler.PageResult{Domain: "down.example", OK: false}
	st := ComputeStats([]SiteCanvases{AnalyzePage(p)})
	if st.SitesCrawledOK != 0 {
		t.Fatal("failed page must not count")
	}
}

// TestEventDetailRoundTrip pins the detect.classify Detail mini-format:
// what EventDetail writes, ParseEventDetail reads back exactly, and the
// full verdict survives a trip through an event record. The verdict
// service's index builder and memo seeding both depend on this.
func TestEventDetailRoundTrip(t *testing.T) {
	cases := []struct {
		script string
		w, h   int
		format imaging.Format
	}{
		{"https://x.com/fp.js", 240, 60, imaging.PNG},
		{"https://y.net/app.js", 12, 12, imaging.JPEG},
		{"s", 0, 0, imaging.Format("")}, // undecodable: no format recorded
	}
	for _, c := range cases {
		d := EventDetail(c.script, c.w, c.h, c.format)
		script, w, h, format, ok := ParseEventDetail(d)
		if !ok {
			t.Fatalf("ParseEventDetail(%q) failed", d)
		}
		if script != c.script || w != c.w || h != c.h || format != c.format {
			t.Fatalf("round trip %q: got (%q,%d,%d,%q)", d, script, w, h, format)
		}
	}
	for _, bad := range []string{"", "noise", "script=x", "script=x WxH image/png", "a b c d"} {
		if _, _, _, _, ok := ParseEventDetail(bad); ok {
			t.Fatalf("ParseEventDetail(%q) should fail", bad)
		}
	}
}

// TestVerdictFromEvent rebuilds verdicts from recorded classify events
// and checks them against the live classification they came from.
func TestVerdictFromEvent(t *testing.T) {
	big := makeDataURL(t, 200, 50, "")
	jpeg := makeDataURL(t, 64, 64, "image/jpeg")
	sink := event.NewSink(16)
	AnalyzePageEvents(pageWith([]crawler.Extraction{
		{ScriptURL: "https://x.com/fp.js", DataURL: big},
		{ScriptURL: "https://x.com/ed.js", DataURL: jpeg},
	}, map[string]map[string]bool{"https://x.com/ed.js": {"save": true}}), sink, "control")
	events := sink.Events()
	if len(events) != 2 {
		t.Fatalf("want 2 classify events, got %d", len(events))
	}
	for i, u := range []string{big, jpeg} {
		anim := i == 1
		want := Classify(u, anim)
		got, ok := VerdictFromEvent(events[i])
		if !ok {
			t.Fatalf("event %d: VerdictFromEvent failed (detail %q)", i, events[i].Detail)
		}
		if got != want {
			t.Fatalf("event %d: verdict %+v, want %+v", i, got, want)
		}
	}
	if _, ok := VerdictFromEvent(event.Event{Kind: event.ClusterAssign}); ok {
		t.Fatal("non-classify events must not yield verdicts")
	}
}
