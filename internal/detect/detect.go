// Package detect implements the fingerprintable-canvas heuristics of
// §3.2, adapted from Englehardt & Narayanan: an extracted canvas counts
// as a fingerprinting test canvas unless
//
//  1. it was extracted in a lossy format (JPEG/WebP — compression
//     destroys the sub-pixel detail fingerprinting needs, and excluding
//     webp also excludes webp-support probes);
//  2. it is smaller than 16×16 pixels (insufficient complexity; also
//     excludes emoji probes); or
//  3. the extracting script also invokes animation-associated methods
//     (save, restore, …) — image editors and drawing apps, not trackers.
package detect

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"canvassing/internal/crawler"
	"canvassing/internal/imaging"
	"canvassing/internal/obs/event"
	"canvassing/internal/web"
)

// Reason explains why a canvas was excluded.
type Reason string

// Exclusion reasons.
const (
	// None marks fingerprintable canvases.
	None Reason = ""
	// LossyFormat marks JPEG/WebP extractions.
	LossyFormat Reason = "lossy-format"
	// SmallCanvas marks extractions under 16×16 px.
	SmallCanvas Reason = "small-canvas"
	// AnimationScript marks extractions from scripts that also call
	// animation-associated methods.
	AnimationScript Reason = "animation-script"
	// Undecodable marks extractions whose payload could not be parsed.
	Undecodable Reason = "undecodable"
)

// animationMembers are the context members whose use marks a script as an
// animation/drawing app rather than a fingerprinter.
var animationMembers = []string{"save", "restore"}

// minDimension is the smallest canvas side considered fingerprintable.
const minDimension = 16

// CanvasInfo is one analyzed extraction event.
type CanvasInfo struct {
	// ScriptURL attributes the extraction.
	ScriptURL string
	// DataURL is the raw extracted value.
	DataURL string
	// Hash is the SHA-256 of the data URL; identical canvases share it.
	Hash string
	// Format and dimensions decoded from the payload.
	Format imaging.Format
	W, H   int
	// Fingerprintable is the heuristics' verdict.
	Fingerprintable bool
	// Exclude is the reason when not fingerprintable.
	Exclude Reason
}

// SiteCanvases is a page's analyzed extractions.
type SiteCanvases struct {
	Domain string
	Rank   int
	Cohort web.Cohort
	// OK mirrors the crawl outcome.
	OK bool
	// All lists every extraction in event order.
	All []CanvasInfo
}

// Fingerprintable returns the fingerprintable subset of All.
func (s *SiteCanvases) Fingerprintable() []CanvasInfo {
	var out []CanvasInfo
	for _, c := range s.All {
		if c.Fingerprintable {
			out = append(out, c)
		}
	}
	return out
}

// HasFingerprinting reports whether the site extracted at least one
// fingerprintable canvas.
func (s *SiteCanvases) HasFingerprinting() bool {
	for _, c := range s.All {
		if c.Fingerprintable {
			return true
		}
	}
	return false
}

// FullyExcluded reports whether the site extracted canvases but none were
// fingerprintable (the A.2 "fully excluded" population).
func (s *SiteCanvases) FullyExcluded() bool {
	return len(s.All) > 0 && !s.HasFingerprinting()
}

// Verdict is the memoizable product of classification: everything the
// §3.2 heuristics derive from a canvas payload plus the extracting
// script's animation flag. It carries no page identity, which is what
// makes it safe to share across sites, conditions, and cohorts.
type Verdict struct {
	Format          imaging.Format
	W, H            int
	Fingerprintable bool
	Exclude         Reason
}

// MemoKey identifies one classification by content: the canvas hash
// (which already encodes any machine- or blocker-induced rendering
// difference) plus the animation flag the extracting script
// contributes. Two extractions with equal keys always classify
// identically.
type MemoKey struct {
	// Hash is HashDataURL of the extracted payload.
	Hash string
	// Anim is whether the extracting script also used animation
	// methods (heuristic 3).
	Anim bool
}

// Memo is a verdict cache consulted by AnalyzePageMemo. GetOrCompute
// must return compute()'s result for a key the first time it is asked
// and the cached verdict afterwards; implementations decide the
// concurrency story (internal/analysis provides a singleflight one).
type Memo interface {
	GetOrCompute(key MemoKey, compute func() Verdict) Verdict
}

// AnalyzePage classifies every extraction of one crawled page.
func AnalyzePage(p *crawler.PageResult) SiteCanvases {
	return AnalyzePageEvents(p, nil, "")
}

// AnalyzePageEvents is AnalyzePage with decision provenance: every
// classification verdict is recorded to sink (nil disables) under the
// given crawl condition label, naming the failing heuristic.
func AnalyzePageEvents(p *crawler.PageResult, sink event.Recorder, crawl string) SiteCanvases {
	return AnalyzePageMemo(p, sink, crawl, nil)
}

// AnalyzePageMemo is AnalyzePageEvents with an optional verdict memo:
// when memo is non-nil, classification of an already-seen (hash, anim)
// pair reuses the cached verdict instead of re-decoding the payload.
// Evidence events are recorded either way — the memo dedupes compute,
// not provenance.
func AnalyzePageMemo(p *crawler.PageResult, sink event.Recorder, crawl string, memo Memo) SiteCanvases {
	out := SiteCanvases{Domain: p.Domain, Rank: p.Rank, Cohort: p.Cohort, OK: p.OK}
	animScripts := map[string]bool{}
	for url, methods := range p.ScriptMethods {
		for _, m := range animationMembers {
			if methods[m] {
				animScripts[url] = true
			}
		}
	}
	for _, e := range p.Extractions {
		ci := CanvasInfo{
			ScriptURL: e.ScriptURL,
			DataURL:   e.DataURL,
			Hash:      HashDataURL(e.DataURL),
		}
		anim := animScripts[e.ScriptURL]
		var v Verdict
		if memo != nil {
			dataURL := e.DataURL
			v = memo.GetOrCompute(MemoKey{Hash: ci.Hash, Anim: anim}, func() Verdict {
				return Classify(dataURL, anim)
			})
		} else {
			v = Classify(e.DataURL, anim)
		}
		ci.Format, ci.W, ci.H = v.Format, v.W, v.H
		ci.Fingerprintable, ci.Exclude = v.Fingerprintable, v.Exclude
		out.All = append(out.All, ci)
		if sink != nil {
			verdict, evidence := "fingerprintable", ""
			if !ci.Fingerprintable {
				verdict, evidence = "excluded", string(ci.Exclude)
			}
			sink.Record(event.Event{
				Kind:     event.DetectClassify,
				Crawl:    crawl,
				Site:     p.Domain,
				Subject:  ci.Hash,
				Verdict:  verdict,
				Evidence: evidence,
				Detail:   EventDetail(ci.ScriptURL, ci.W, ci.H, ci.Format),
			})
		}
	}
	return out
}

// AnalyzeAll classifies every page of a crawl.
func AnalyzeAll(pages []*crawler.PageResult) []SiteCanvases {
	return AnalyzeAllEvents(pages, nil, "")
}

// AnalyzeAllEvents is AnalyzeAll with decision provenance (see
// AnalyzePageEvents).
func AnalyzeAllEvents(pages []*crawler.PageResult, sink event.Recorder, crawl string) []SiteCanvases {
	out := make([]SiteCanvases, 0, len(pages))
	for _, p := range pages {
		out = append(out, AnalyzePageEvents(p, sink, crawl))
	}
	return out
}

// EventDetail formats the detect.classify Detail field. It is the
// write half of a stable mini-format ("script=<url> <W>x<H> <format>")
// that read paths — the verdict service's index builder — parse back
// with ParseEventDetail, so both directions live next to each other.
func EventDetail(scriptURL string, w, h int, format imaging.Format) string {
	return fmt.Sprintf("script=%s %dx%d %s", scriptURL, w, h, format)
}

// ParseEventDetail inverts EventDetail. ok is false for details that
// do not follow the format (including details from pre-format events).
func ParseEventDetail(detail string) (scriptURL string, w, h int, format imaging.Format, ok bool) {
	fields := strings.Fields(detail)
	// Undecodable payloads record an empty format, leaving two fields.
	if len(fields) < 2 || len(fields) > 3 || !strings.HasPrefix(fields[0], "script=") {
		return "", 0, 0, "", false
	}
	scriptURL = strings.TrimPrefix(fields[0], "script=")
	if n, err := fmt.Sscanf(fields[1], "%dx%d", &w, &h); err != nil || n != 2 {
		return "", 0, 0, "", false
	}
	if len(fields) == 3 {
		format = imaging.Format(fields[2])
	}
	return scriptURL, w, h, format, true
}

// VerdictFromEvent reconstructs the memoizable Verdict a
// detect.classify event recorded: the verdict/evidence fields carry
// fingerprintability and the exclusion reason, the detail carries
// dimensions and format. ok is false for non-classify events or
// unparseable details — callers fall back to recomputing from the
// payload.
func VerdictFromEvent(e event.Event) (Verdict, bool) {
	if e.Kind != event.DetectClassify {
		return Verdict{}, false
	}
	_, w, h, format, ok := ParseEventDetail(e.Detail)
	if !ok {
		return Verdict{}, false
	}
	v := Verdict{Format: format, W: w, H: h}
	if e.Verdict == "fingerprintable" {
		v.Fingerprintable = true
	} else {
		v.Exclude = Reason(e.Evidence)
	}
	return v, true
}

// HashDataURL returns the canonical canvas identity: SHA-256 over the
// full data URL.
func HashDataURL(u string) string {
	sum := sha256.Sum256([]byte(u))
	return hex.EncodeToString(sum[:])
}

// Classify applies the three heuristics in order. It is a pure
// function of the payload and the animation flag — the property the
// memo cache and the parallel executor both rely on.
func Classify(dataURL string, fromAnimScript bool) Verdict {
	var v Verdict
	format, payload, err := imaging.ParseDataURL(dataURL)
	if err != nil {
		v.Exclude = Undecodable
		return v
	}
	v.Format = format
	switch format {
	case imaging.PNG:
		w, h, err := imaging.PNGSize(payload)
		if err != nil {
			v.Exclude = Undecodable
			return v
		}
		v.W, v.H = w, h
	default:
		// Lossy formats: record dimensions when cheaply available.
		if img, err := imaging.DecodeWebPSim(payload); err == nil {
			v.W, v.H = img.W, img.H
		}
		v.Exclude = LossyFormat
		return v
	}
	if v.W < minDimension || v.H < minDimension {
		v.Exclude = SmallCanvas
		return v
	}
	if fromAnimScript {
		v.Exclude = AnimationScript
		return v
	}
	v.Fingerprintable = true
	return v
}

// Stats summarizes detection over a crawl (the §3.2 yield numbers).
type Stats struct {
	SitesCrawledOK      int
	SitesExtracting     int // ≥1 extraction of any kind
	SitesFingerprinting int // ≥1 fingerprintable canvas
	SitesFullyExcluded  int // extractions but none fingerprintable
	TotalExtractions    int
	Fingerprintable     int
	ByReason            map[Reason]int
}

// ComputeStats aggregates detection results.
func ComputeStats(sites []SiteCanvases) Stats {
	st := Stats{ByReason: map[Reason]int{}}
	for i := range sites {
		s := &sites[i]
		if !s.OK {
			continue
		}
		st.SitesCrawledOK++
		if len(s.All) > 0 {
			st.SitesExtracting++
		}
		if s.HasFingerprinting() {
			st.SitesFingerprinting++
		}
		if s.FullyExcluded() {
			st.SitesFullyExcluded++
		}
		for _, c := range s.All {
			st.TotalExtractions++
			if c.Fingerprintable {
				st.Fingerprintable++
			} else {
				st.ByReason[c.Exclude]++
			}
		}
	}
	return st
}

// FingerprintableFraction returns the §3.2 yield: the fraction of
// extracted canvases that are fingerprintable (the paper reports 83%).
func (s Stats) FingerprintableFraction() float64 {
	if s.TotalExtractions == 0 {
		return 0
	}
	return float64(s.Fingerprintable) / float64(s.TotalExtractions)
}

// PrevalenceFraction returns the §4.1 headline: the fraction of
// successfully crawled sites with at least one fingerprintable canvas.
func (s Stats) PrevalenceFraction() float64 {
	if s.SitesCrawledOK == 0 {
		return 0
	}
	return float64(s.SitesFingerprinting) / float64(s.SitesCrawledOK)
}
