// Package detect implements the fingerprintable-canvas heuristics of
// §3.2, adapted from Englehardt & Narayanan: an extracted canvas counts
// as a fingerprinting test canvas unless
//
//  1. it was extracted in a lossy format (JPEG/WebP — compression
//     destroys the sub-pixel detail fingerprinting needs, and excluding
//     webp also excludes webp-support probes);
//  2. it is smaller than 16×16 pixels (insufficient complexity; also
//     excludes emoji probes); or
//  3. the extracting script also invokes animation-associated methods
//     (save, restore, …) — image editors and drawing apps, not trackers.
package detect

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"canvassing/internal/crawler"
	"canvassing/internal/imaging"
	"canvassing/internal/obs/event"
	"canvassing/internal/web"
)

// Reason explains why a canvas was excluded.
type Reason string

// Exclusion reasons.
const (
	// None marks fingerprintable canvases.
	None Reason = ""
	// LossyFormat marks JPEG/WebP extractions.
	LossyFormat Reason = "lossy-format"
	// SmallCanvas marks extractions under 16×16 px.
	SmallCanvas Reason = "small-canvas"
	// AnimationScript marks extractions from scripts that also call
	// animation-associated methods.
	AnimationScript Reason = "animation-script"
	// Undecodable marks extractions whose payload could not be parsed.
	Undecodable Reason = "undecodable"
)

// animationMembers are the context members whose use marks a script as an
// animation/drawing app rather than a fingerprinter.
var animationMembers = []string{"save", "restore"}

// minDimension is the smallest canvas side considered fingerprintable.
const minDimension = 16

// CanvasInfo is one analyzed extraction event.
type CanvasInfo struct {
	// ScriptURL attributes the extraction.
	ScriptURL string
	// DataURL is the raw extracted value.
	DataURL string
	// Hash is the SHA-256 of the data URL; identical canvases share it.
	Hash string
	// Format and dimensions decoded from the payload.
	Format imaging.Format
	W, H   int
	// Fingerprintable is the heuristics' verdict.
	Fingerprintable bool
	// Exclude is the reason when not fingerprintable.
	Exclude Reason
}

// SiteCanvases is a page's analyzed extractions.
type SiteCanvases struct {
	Domain string
	Rank   int
	Cohort web.Cohort
	// OK mirrors the crawl outcome.
	OK bool
	// All lists every extraction in event order.
	All []CanvasInfo
}

// Fingerprintable returns the fingerprintable subset of All.
func (s *SiteCanvases) Fingerprintable() []CanvasInfo {
	var out []CanvasInfo
	for _, c := range s.All {
		if c.Fingerprintable {
			out = append(out, c)
		}
	}
	return out
}

// HasFingerprinting reports whether the site extracted at least one
// fingerprintable canvas.
func (s *SiteCanvases) HasFingerprinting() bool {
	for _, c := range s.All {
		if c.Fingerprintable {
			return true
		}
	}
	return false
}

// FullyExcluded reports whether the site extracted canvases but none were
// fingerprintable (the A.2 "fully excluded" population).
func (s *SiteCanvases) FullyExcluded() bool {
	return len(s.All) > 0 && !s.HasFingerprinting()
}

// AnalyzePage classifies every extraction of one crawled page.
func AnalyzePage(p *crawler.PageResult) SiteCanvases {
	return AnalyzePageEvents(p, nil, "")
}

// AnalyzePageEvents is AnalyzePage with decision provenance: every
// classification verdict is recorded to sink (nil disables) under the
// given crawl condition label, naming the failing heuristic.
func AnalyzePageEvents(p *crawler.PageResult, sink *event.Sink, crawl string) SiteCanvases {
	out := SiteCanvases{Domain: p.Domain, Rank: p.Rank, Cohort: p.Cohort, OK: p.OK}
	animScripts := map[string]bool{}
	for url, methods := range p.ScriptMethods {
		for _, m := range animationMembers {
			if methods[m] {
				animScripts[url] = true
			}
		}
	}
	for _, e := range p.Extractions {
		ci := CanvasInfo{
			ScriptURL: e.ScriptURL,
			DataURL:   e.DataURL,
			Hash:      HashDataURL(e.DataURL),
		}
		classify(&ci, animScripts[e.ScriptURL])
		out.All = append(out.All, ci)
		if sink != nil {
			verdict, evidence := "fingerprintable", ""
			if !ci.Fingerprintable {
				verdict, evidence = "excluded", string(ci.Exclude)
			}
			sink.Record(event.Event{
				Kind:     event.DetectClassify,
				Crawl:    crawl,
				Site:     p.Domain,
				Subject:  ci.Hash,
				Verdict:  verdict,
				Evidence: evidence,
				Detail:   fmt.Sprintf("script=%s %dx%d %s", ci.ScriptURL, ci.W, ci.H, ci.Format),
			})
		}
	}
	return out
}

// AnalyzeAll classifies every page of a crawl.
func AnalyzeAll(pages []*crawler.PageResult) []SiteCanvases {
	return AnalyzeAllEvents(pages, nil, "")
}

// AnalyzeAllEvents is AnalyzeAll with decision provenance (see
// AnalyzePageEvents).
func AnalyzeAllEvents(pages []*crawler.PageResult, sink *event.Sink, crawl string) []SiteCanvases {
	out := make([]SiteCanvases, 0, len(pages))
	for _, p := range pages {
		out = append(out, AnalyzePageEvents(p, sink, crawl))
	}
	return out
}

// HashDataURL returns the canonical canvas identity: SHA-256 over the
// full data URL.
func HashDataURL(u string) string {
	sum := sha256.Sum256([]byte(u))
	return hex.EncodeToString(sum[:])
}

// classify applies the three heuristics in order.
func classify(ci *CanvasInfo, fromAnimScript bool) {
	format, payload, err := imaging.ParseDataURL(ci.DataURL)
	if err != nil {
		ci.Exclude = Undecodable
		return
	}
	ci.Format = format
	switch format {
	case imaging.PNG:
		w, h, err := imaging.PNGSize(payload)
		if err != nil {
			ci.Exclude = Undecodable
			return
		}
		ci.W, ci.H = w, h
	default:
		// Lossy formats: record dimensions when cheaply available.
		if img, err := imaging.DecodeWebPSim(payload); err == nil {
			ci.W, ci.H = img.W, img.H
		}
		ci.Exclude = LossyFormat
		return
	}
	if ci.W < minDimension || ci.H < minDimension {
		ci.Exclude = SmallCanvas
		return
	}
	if fromAnimScript {
		ci.Exclude = AnimationScript
		return
	}
	ci.Fingerprintable = true
}

// Stats summarizes detection over a crawl (the §3.2 yield numbers).
type Stats struct {
	SitesCrawledOK      int
	SitesExtracting     int // ≥1 extraction of any kind
	SitesFingerprinting int // ≥1 fingerprintable canvas
	SitesFullyExcluded  int // extractions but none fingerprintable
	TotalExtractions    int
	Fingerprintable     int
	ByReason            map[Reason]int
}

// ComputeStats aggregates detection results.
func ComputeStats(sites []SiteCanvases) Stats {
	st := Stats{ByReason: map[Reason]int{}}
	for i := range sites {
		s := &sites[i]
		if !s.OK {
			continue
		}
		st.SitesCrawledOK++
		if len(s.All) > 0 {
			st.SitesExtracting++
		}
		if s.HasFingerprinting() {
			st.SitesFingerprinting++
		}
		if s.FullyExcluded() {
			st.SitesFullyExcluded++
		}
		for _, c := range s.All {
			st.TotalExtractions++
			if c.Fingerprintable {
				st.Fingerprintable++
			} else {
				st.ByReason[c.Exclude]++
			}
		}
	}
	return st
}

// FingerprintableFraction returns the §3.2 yield: the fraction of
// extracted canvases that are fingerprintable (the paper reports 83%).
func (s Stats) FingerprintableFraction() float64 {
	if s.TotalExtractions == 0 {
		return 0
	}
	return float64(s.Fingerprintable) / float64(s.TotalExtractions)
}

// PrevalenceFraction returns the §4.1 headline: the fraction of
// successfully crawled sites with at least one fingerprintable canvas.
func (s Stats) PrevalenceFraction() float64 {
	if s.SitesCrawledOK == 0 {
		return 0
	}
	return float64(s.SitesFingerprinting) / float64(s.SitesCrawledOK)
}
