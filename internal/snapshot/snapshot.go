// Package snapshot is a content-addressed store of fetched page
// resources. The first crawl to see a URL stores the served body under
// its content hash; later crawls of the same web — the ABP/uBO/M1
// re-crawl conditions — reuse the stored body instead of re-fetching.
// That is the paper-scale economy: §4.2's three re-crawl conditions
// revisit the same ~40k sites, and almost every script body they need
// was already served to the control crawl.
//
// Determinism contract: Fetch is called concurrently by crawl workers,
// but hit/miss accounting deliberately does NOT happen there — two
// workers racing for the same URL would make the counters scheduling-
// dependent. Instead the crawler's committer calls Account with each
// page's fetched URLs in page-index order, and the store counts a miss
// exactly when a URL is accounted for the first time. The counters
// live on the store, not in the metrics registry, so enabling snapshot
// reuse leaves bundle.DeterministicMetrics byte-identical (a pinned
// acceptance criterion).
package snapshot

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"canvassing/internal/netsim"
	"canvassing/internal/stats"
)

// SchemaVersion is the on-disk index format version.
const SchemaVersion = 1

// Store is the content-addressed body cache. The zero value is not
// usable; call New.
type Store struct {
	mu    sync.RWMutex
	byURL map[string]uint64 // URL → content hash
	blobs map[uint64]string // content hash → body

	// Accounting state: owned by the crawler's committer goroutine via
	// Account, locked anyway so Counts/State are safe to read anytime.
	seen      map[string]bool
	seenOrder []string
	hits      int64
	misses    int64
}

// New returns an empty store.
func New() *Store {
	return &Store{
		byURL: map[string]uint64{},
		blobs: map[uint64]string{},
		seen:  map[string]bool{},
	}
}

// Fetch returns the body stored for u, calling fetch and storing its
// result on first sight. Concurrent callers may race to fetch the same
// URL; both results are identical by construction (the substrate is
// deterministic), so last-write-wins is harmless. No hit/miss
// accounting happens here — see Account.
func (s *Store) Fetch(u netsim.URL, fetch func() (string, error)) (string, error) {
	key := u.String()
	s.mu.RLock()
	h, ok := s.byURL[key]
	body, okBody := s.blobs[h]
	s.mu.RUnlock()
	if ok && okBody {
		return body, nil
	}
	body, err := fetch()
	if err != nil {
		return "", err
	}
	h = stats.HashString(body)
	s.mu.Lock()
	s.byURL[key] = h
	s.blobs[h] = body
	s.mu.Unlock()
	return body, nil
}

// Account records one page's fetched URLs in commit order: the first
// accounting of a URL is a miss (the fetch that populated the store),
// every later one a hit. Called by the crawl committer in page-index
// order, which is what makes the counters independent of worker
// scheduling.
func (s *Store) Account(urls []string) {
	s.mu.Lock()
	for _, u := range urls {
		if s.seen[u] {
			s.hits++
		} else {
			s.seen[u] = true
			s.seenOrder = append(s.seenOrder, u)
			s.misses++
		}
	}
	s.mu.Unlock()
}

// Merge folds another store into this one — the recombination half of
// a distributed crawl, where each work-unit fetched through its own
// store and the coordinator rebuilds the shared one. Blobs dedupe by
// content hash. Accounting replays other's cursor against this store's
// seen-set: other's internal repeats are already collapsed into its
// hit count (adopted wholesale), and each of other's first-seen URLs
// counts here as a hit when some earlier-merged unit already fetched
// it, or as a fresh miss otherwise. Merging units in page order
// therefore reproduces the exact hit/miss totals and first-seen order
// of the single-process crawl's unified Account stream.
func (s *Store) Merge(other *Store) {
	if other == nil {
		return
	}
	other.mu.RLock()
	byURL := make(map[string]uint64, len(other.byURL))
	for u, h := range other.byURL {
		byURL[u] = h
	}
	blobs := make(map[uint64]string, len(other.blobs))
	for h, b := range other.blobs {
		blobs[h] = b
	}
	order := append([]string(nil), other.seenOrder...)
	hits := other.hits
	other.mu.RUnlock()

	s.mu.Lock()
	for u, h := range byURL {
		s.byURL[u] = h
	}
	for h, b := range blobs {
		if _, ok := s.blobs[h]; !ok {
			s.blobs[h] = b
		}
	}
	s.hits += hits
	for _, u := range order {
		if s.seen[u] {
			s.hits++
		} else {
			s.seen[u] = true
			s.seenOrder = append(s.seenOrder, u)
			s.misses++
		}
	}
	s.mu.Unlock()
}

// Counts returns the accounted hit/miss totals.
func (s *Store) Counts() (hits, misses int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits, s.misses
}

// HitRate returns the accounted hit rate and whether any lookups were
// accounted at all — "no lookups" and "0% hit rate" are different
// facts and reports render them differently.
func (s *Store) HitRate() (rate float64, ok bool) {
	hits, misses := s.Counts()
	if hits+misses == 0 {
		return 0, false
	}
	return float64(hits) / float64(hits+misses), true
}

// Len returns the number of distinct stored bodies.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// State is the serializable form of a store — the snapshot half of a
// study checkpoint. Bodies are keyed by content hash; AccountedURLs is
// the accounting cursor (first-seen order), from which the seen-set
// and the miss count rebuild exactly.
type State struct {
	Schema int `json:"schema"`
	// URLs maps URL → content hash (hex, for JSON friendliness).
	URLs map[string]string `json:"urls"`
	// AccountedURLs lists accounted URLs in first-seen order.
	AccountedURLs []string `json:"accounted_urls,omitempty"`
	// Hits is the accounted hit total (misses == len(AccountedURLs)).
	Hits int64 `json:"hits"`
}

// Export captures the store's index and accounting cursor. Blob bodies
// are not in the State — Save writes them content-addressed next to
// the index.
func (s *Store) Export() State {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := State{Schema: SchemaVersion, URLs: make(map[string]string, len(s.byURL)), Hits: s.hits}
	for u, h := range s.byURL {
		st.URLs[u] = fmt.Sprintf("%016x", h)
	}
	st.AccountedURLs = append([]string(nil), s.seenOrder...)
	return st
}

// restoreAccounting rebuilds the accounting cursor from a State.
func (s *Store) restoreAccounting(st State) {
	s.mu.Lock()
	s.seen = make(map[string]bool, len(st.AccountedURLs))
	s.seenOrder = append(s.seenOrder[:0], st.AccountedURLs...)
	for _, u := range st.AccountedURLs {
		s.seen[u] = true
	}
	s.hits = st.Hits
	s.misses = int64(len(st.AccountedURLs))
	s.mu.Unlock()
}

// Dir layout under Save's dir.
const (
	indexFile = "index.json"
	blobDir   = "blobs"
)

// Save persists the store under dir: content-addressed blob files plus
// an atomically replaced index.json. Blobs already on disk are left
// alone (content addressing makes rewrites pointless), so periodic
// checkpoint saves cost only the new bodies.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(filepath.Join(dir, blobDir), 0o755); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	s.mu.RLock()
	blobs := make(map[uint64]string, len(s.blobs))
	for h, b := range s.blobs {
		blobs[h] = b
	}
	s.mu.RUnlock()
	hashes := make([]uint64, 0, len(blobs))
	for h := range blobs {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	for _, h := range hashes {
		path := filepath.Join(dir, blobDir, fmt.Sprintf("%016x.js", h))
		if _, err := os.Stat(path); err == nil {
			continue
		}
		if err := atomicWrite(path, []byte(blobs[h])); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(s.Export(), "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return atomicWrite(filepath.Join(dir, indexFile), append(data, '\n'))
}

// Load rebuilds a store from a Save directory.
func Load(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("snapshot: index: %w", err)
	}
	if st.Schema > SchemaVersion {
		return nil, fmt.Errorf("snapshot: index schema v%d is newer than supported v%d", st.Schema, SchemaVersion)
	}
	s := New()
	for u, hex := range st.URLs {
		var h uint64
		if _, err := fmt.Sscanf(hex, "%016x", &h); err != nil {
			return nil, fmt.Errorf("snapshot: index hash %q: %w", hex, err)
		}
		s.byURL[u] = h
		if _, ok := s.blobs[h]; ok {
			continue
		}
		body, err := os.ReadFile(filepath.Join(dir, blobDir, hex+".js"))
		if err != nil {
			return nil, fmt.Errorf("snapshot: blob %s: %w", hex, err)
		}
		if got := stats.HashString(string(body)); got != h {
			return nil, fmt.Errorf("snapshot: blob %s content hash mismatch (got %016x)", hex, got)
		}
		s.blobs[h] = string(body)
	}
	s.restoreAccounting(st)
	return s, nil
}

// atomicWrite writes data to path via a same-directory temp file and
// rename, so readers never see a torn file.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}
