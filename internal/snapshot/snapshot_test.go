package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"canvassing/internal/netsim"
)

func mustURL(t *testing.T, raw string) netsim.URL {
	t.Helper()
	u, err := netsim.ParseURL(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestFetchReadsThroughOnce(t *testing.T) {
	s := New()
	u := mustURL(t, "https://cdn.example/fp.js")
	calls := 0
	fetch := func() (string, error) { calls++; return "var x = 1;", nil }
	for i := 0; i < 3; i++ {
		body, err := s.Fetch(u, fetch)
		if err != nil {
			t.Fatal(err)
		}
		if body != "var x = 1;" {
			t.Fatalf("body = %q", body)
		}
	}
	if calls != 1 {
		t.Fatalf("read-through fetched %d times, want 1", calls)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestFetchErrorNotCached(t *testing.T) {
	s := New()
	u := mustURL(t, "https://cdn.example/down.js")
	fail := true
	fetch := func() (string, error) {
		if fail {
			return "", fmt.Errorf("boom")
		}
		return "ok", nil
	}
	if _, err := s.Fetch(u, fetch); err == nil {
		t.Fatal("error swallowed")
	}
	fail = false
	body, err := s.Fetch(u, fetch)
	if err != nil || body != "ok" {
		t.Fatalf("recovery fetch: %q, %v", body, err)
	}
}

// TestContentAddressing: two URLs serving identical bodies share one
// blob — the dedup that makes paper-scale snapshot dirs affordable
// (vendor scripts are byte-identical across thousands of sites).
func TestContentAddressing(t *testing.T) {
	s := New()
	body := "function fp() {}"
	for i := 0; i < 5; i++ {
		u := mustURL(t, fmt.Sprintf("https://site%d.example/v.js", i))
		if _, err := s.Fetch(u, func() (string, error) { return body, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("5 URLs with one body stored %d blobs, want 1", s.Len())
	}
}

// TestAccountingIsCommitOrdered: hit/miss counts depend only on the
// order Account is called, not on Fetch interleaving — the property
// that keeps snapshot counters identical at any crawl width.
func TestAccountingIsCommitOrdered(t *testing.T) {
	run := func(fetchOrder []string) (int64, int64) {
		s := New()
		var wg sync.WaitGroup
		for _, raw := range fetchOrder {
			wg.Add(1)
			go func(raw string) {
				defer wg.Done()
				u, _ := netsim.ParseURL(raw)
				s.Fetch(u, func() (string, error) { return "body:" + raw, nil })
			}(raw)
		}
		wg.Wait()
		// Commit order is fixed regardless of the racing fetches above.
		s.Account([]string{"https://a.example/x.js", "https://b.example/y.js"})
		s.Account([]string{"https://a.example/x.js"})
		s.Account([]string{"https://b.example/y.js", "https://a.example/x.js"})
		return s.Counts()
	}
	order1 := []string{"https://a.example/x.js", "https://b.example/y.js"}
	order2 := []string{"https://b.example/y.js", "https://a.example/x.js"}
	h1, m1 := run(order1)
	h2, m2 := run(order2)
	if h1 != h2 || m1 != m2 {
		t.Fatalf("accounting depends on fetch order: %d/%d vs %d/%d", h1, m1, h2, m2)
	}
	if m1 != 2 || h1 != 3 {
		t.Fatalf("hits/misses = %d/%d, want 3/2 (first accounting of a URL is the miss)", h1, m1)
	}
	if rate, ok := New().HitRate(); ok || rate != 0 {
		t.Fatal("empty store must report no lookups, not a 0% rate")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s := New()
	bodies := map[string]string{
		"https://a.example/x.js": "var a = 1;",
		"https://b.example/y.js": "var b = 2;",
		"https://c.example/x.js": "var a = 1;", // shared blob with a.example
	}
	for raw, body := range bodies {
		u := mustURL(t, raw)
		if _, err := s.Fetch(u, func() (string, error) { return body, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s.Account([]string{"https://a.example/x.js", "https://b.example/y.js"})
	s.Account([]string{"https://a.example/x.js"})

	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	// A second save is a no-op for existing blobs and must not fail.
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}

	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("loaded %d blobs, want %d", got.Len(), s.Len())
	}
	h0, m0 := s.Counts()
	h1, m1 := got.Counts()
	if h0 != h1 || m0 != m1 {
		t.Fatalf("accounting cursor lost in roundtrip: %d/%d vs %d/%d", h1, m1, h0, m0)
	}
	// Loaded store serves the stored bodies without re-fetching.
	for raw, body := range bodies {
		u := mustURL(t, raw)
		b, err := got.Fetch(u, func() (string, error) { t.Fatal("re-fetched a stored body"); return "", nil })
		if err != nil || b != body {
			t.Fatalf("loaded body for %s = %q, %v", raw, b, err)
		}
	}
	// The cursor continues exactly where it left off: an already-seen
	// URL accounts as a hit, a fresh one as a miss.
	got.Account([]string{"https://a.example/x.js", "https://b.example/y.js", "https://c.example/x.js"})
	h2, m2 := got.Counts()
	if h2 != h1+2 || m2 != m1+1 {
		t.Fatalf("post-load accounting %d/%d, want %d/%d", h2, m2, h1+2, m1+1)
	}
}

func TestLoadRejectsCorruptBlob(t *testing.T) {
	s := New()
	u := mustURL(t, "https://a.example/x.js")
	if _, err := s.Fetch(u, func() (string, error) { return "var a = 1;", nil }); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	blobs, err := filepath.Glob(filepath.Join(dir, "blobs", "*.js"))
	if err != nil || len(blobs) != 1 {
		t.Fatalf("blob files: %v, %v", blobs, err)
	}
	if err := os.WriteFile(blobs[0], []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("Load accepted a blob whose content hash does not match its name")
	}
}

func TestLoadRejectsNewerSchema(t *testing.T) {
	dir := t.TempDir()
	data := fmt.Sprintf(`{"schema": %d, "urls": {}}`, SchemaVersion+1)
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("Load accepted an index from a newer schema")
	}
}
