package netsim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseURL(t *testing.T) {
	u, err := ParseURL("https://Example.com/js/app.js")
	if err != nil {
		t.Fatal(err)
	}
	if u.Scheme != "https" || u.Host != "example.com" || u.Path != "/js/app.js" {
		t.Fatalf("%+v", u)
	}
	if u.String() != "https://example.com/js/app.js" {
		t.Fatal("roundtrip")
	}
	if u.Base() != "app.js" {
		t.Fatal("base")
	}
	u2, _ := ParseURL("https://example.com")
	if u2.Path != "/" {
		t.Fatal("default path")
	}
}

func TestParseURLErrors(t *testing.T) {
	for _, bad := range []string{"", "example.com/x", "https://", "://host"} {
		if _, err := ParseURL(bad); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

func TestETLDPlusOne(t *testing.T) {
	cases := map[string]string{
		"example.com":        "example.com",
		"www.example.com":    "example.com",
		"a.b.c.example.com":  "example.com",
		"example.co.uk":      "example.co.uk",
		"shop.example.co.uk": "example.co.uk",
		"betus.com.pa":       "betus.com.pa",
		"www.betus.com.pa":   "betus.com.pa",
		"localhost":          "localhost",
		"privacy-cs.mail.ru": "mail.ru",
	}
	for in, want := range cases {
		if got := ETLDPlusOne(in); got != want {
			t.Fatalf("ETLDPlusOne(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSameSite(t *testing.T) {
	if !SameSite("www.shop.com", "cdn.shop.com") {
		t.Fatal("same registrable domain")
	}
	if SameSite("shop.com", "tracker.net") {
		t.Fatal("different sites")
	}
}

func TestIsSubdomainOf(t *testing.T) {
	if !IsSubdomainOf("fp.shop.com", "shop.com") {
		t.Fatal("subdomain")
	}
	if IsSubdomainOf("shop.com", "shop.com") {
		t.Fatal("self is not a strict subdomain")
	}
	if IsSubdomainOf("notshop.com", "shop.com") {
		t.Fatal("suffix match must respect label boundary")
	}
}

func TestServedFromPopularCDN(t *testing.T) {
	if !ServedFromPopularCDN("dxxxx.cloudfront.net") {
		t.Fatal("cloudfront subdomain")
	}
	if !ServedFromPopularCDN("gstatic.com") {
		t.Fatal("exact cdn domain")
	}
	if ServedFromPopularCDN("example.com") {
		t.Fatal("non-cdn")
	}
	if ServedFromPopularCDN("evilcloudfront.net") {
		t.Fatal("label boundary")
	}
}

func TestCNAMEChain(t *testing.T) {
	d := NewDNS()
	d.AddCNAME("fp.shop.com", "shop.fpvendor.net")
	d.AddCNAME("shop.fpvendor.net", "edge.fpvendor.net")
	chain := d.CNAMEChain("fp.shop.com")
	if len(chain) != 3 || chain[2] != "edge.fpvendor.net" {
		t.Fatalf("chain: %v", chain)
	}
	if d.CanonicalName("fp.shop.com") != "edge.fpvendor.net" {
		t.Fatal("canonical")
	}
	if d.CanonicalName("unrelated.com") != "unrelated.com" {
		t.Fatal("no cname")
	}
}

func TestCNAMELoopBounded(t *testing.T) {
	d := NewDNS()
	d.AddCNAME("a.com", "b.com")
	d.AddCNAME("b.com", "a.com")
	chain := d.CNAMEChain("a.com")
	if len(chain) > 10 {
		t.Fatalf("loop not bounded: %d", len(chain))
	}
}

func TestIsCloaked(t *testing.T) {
	d := NewDNS()
	d.AddCNAME("metrics.shop.com", "t.tracker.io")
	d.AddCNAME("www.shop.com", "lb.shop.com")
	if !d.IsCloaked("metrics.shop.com") {
		t.Fatal("cross-site cname is cloaking")
	}
	if d.IsCloaked("www.shop.com") {
		t.Fatal("same-site cname is not cloaking")
	}
	if d.IsCloaked("plain.com") {
		t.Fatal("no cname is not cloaking")
	}
}

func TestStoreHostFetch(t *testing.T) {
	s := NewStore(nil)
	u := MustParseURL("https://vendor.net/fp.js")
	s.Host(u, "text/javascript", "var x = 1;")
	r, err := s.Fetch(u)
	if err != nil || r.Body != "var x = 1;" || r.MIME != "text/javascript" {
		t.Fatalf("fetch: %+v err=%v", r, err)
	}
	_, err = s.Fetch(MustParseURL("https://vendor.net/missing.js"))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if s.Len() != 1 {
		t.Fatal("len")
	}
}

func TestFetchThroughCloak(t *testing.T) {
	d := NewDNS()
	s := NewStore(d)
	canonical := MustParseURL("https://edge.fpvendor.net/collector.js")
	s.Host(canonical, "text/javascript", "fingerprint();")
	d.AddCNAME("metrics.shop.com", "edge.fpvendor.net")

	cloaked := MustParseURL("https://metrics.shop.com/collector.js")
	r, err := s.Fetch(cloaked)
	if err != nil {
		t.Fatal(err)
	}
	if r.Body != "fingerprint();" {
		t.Fatal("cloaked fetch should serve canonical content")
	}
	// The resource reports the requested URL: the browser never sees the
	// canonical name.
	if r.URL.Host != "metrics.shop.com" {
		t.Fatalf("resource URL: %v", r.URL)
	}
}

func TestMustParseURLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseURL("not a url")
}

// Property: ETLDPlusOne is idempotent.
func TestETLDIdempotentProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		clean := func(s string) string {
			out := ""
			for _, r := range s {
				if r >= 'a' && r <= 'z' {
					out += string(r)
				}
			}
			if out == "" {
				out = "x"
			}
			return out
		}
		host := clean(a) + "." + clean(b) + "." + clean(c) + ".com"
		e := ETLDPlusOne(host)
		return ETLDPlusOne(e) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: URL parse/format roundtrip.
func TestURLRoundtripProperty(t *testing.T) {
	f := func(host, path string) bool {
		cleanHost := ""
		for _, r := range host {
			if r >= 'a' && r <= 'z' || r == '.' || r == '-' {
				cleanHost += string(r)
			}
		}
		if cleanHost == "" || cleanHost[0] == '.' {
			return true
		}
		cleanPath := ""
		for _, r := range path {
			if r > ' ' && r != '/' && r < 127 {
				cleanPath += string(r)
			}
		}
		s := "https://" + cleanHost + "/" + cleanPath
		u, err := ParseURL(s)
		if err != nil {
			return false
		}
		u2, err := ParseURL(u.String())
		return err == nil && u == u2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
