package netsim

import (
	"strings"
	"testing"
)

// FuzzParseURL pins the parser's total behavior: no panic on any input,
// and every accepted URL satisfies the invariants the rest of the
// pipeline assumes (lowercase host, "/"-rooted path, and a stable
// String() round trip).
func FuzzParseURL(f *testing.F) {
	for _, seed := range []string{
		"https://example.com/js/app.js",
		"http://EXAMPLE.com",
		"https://shop.example.co.uk/a/b?c=d",
		"wss://x.y/",
		"://host",
		"https://",
		"",
		"https://host/path%20space",
		"a://b/c://d",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		u, err := ParseURL(s)
		if err != nil {
			return
		}
		if u.Scheme == "" {
			t.Fatalf("accepted %q with empty scheme", s)
		}
		if u.Host == "" || u.Host != strings.ToLower(u.Host) {
			t.Fatalf("accepted %q with bad host %q", s, u.Host)
		}
		if !strings.HasPrefix(u.Path, "/") {
			t.Fatalf("accepted %q with unrooted path %q", s, u.Path)
		}
		// Reparsing the rendered form must agree with the first parse.
		u2, err := ParseURL(u.String())
		if err != nil {
			t.Fatalf("ParseURL(%q).String() = %q does not reparse: %v", s, u.String(), err)
		}
		if u2 != u {
			t.Fatalf("round trip of %q: %+v != %+v", s, u2, u)
		}
	})
}
