// Package netsim simulates the network layer beneath the crawler: URLs,
// DNS with CNAME records, and an HTTP-like resource store.
//
// The paper's evasion analysis (§5.2) hinges on network-layer facts —
// whether a script is served first-party or third-party, from a customer
// subdomain, through a CNAME-cloaked host, or from a shared CDN. Those
// distinctions are modeled here precisely so that blocklist matching and
// ad-blocker behavior can get them right (and wrong) the same way real
// ad blockers do.
package netsim

import (
	"errors"
	"fmt"
	"strings"
)

// URL is a simplified absolute URL (scheme, host, path?query).
type URL struct {
	Scheme string
	Host   string
	Path   string
}

// ParseURL parses scheme://host/path URLs. The path defaults to "/".
func ParseURL(s string) (URL, error) {
	scheme, rest, ok := strings.Cut(s, "://")
	if !ok || scheme == "" {
		return URL{}, fmt.Errorf("netsim: missing scheme in %q", s)
	}
	host, path, found := strings.Cut(rest, "/")
	if host == "" {
		return URL{}, fmt.Errorf("netsim: missing host in %q", s)
	}
	u := URL{Scheme: scheme, Host: strings.ToLower(host), Path: "/"}
	if found {
		u.Path = "/" + path
	}
	return u, nil
}

// MustParseURL is ParseURL for static configuration; it panics on error.
func MustParseURL(s string) URL {
	u, err := ParseURL(s)
	if err != nil {
		panic(err)
	}
	return u
}

// String reassembles the URL.
func (u URL) String() string { return u.Scheme + "://" + u.Host + u.Path }

// Base returns the filename component of the path.
func (u URL) Base() string {
	i := strings.LastIndexByte(u.Path, '/')
	return u.Path[i+1:]
}

// publicSuffixes lists the multi-label suffixes this simulation's domains
// use; single-label TLDs are handled generically.
var publicSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "com.au": true, "com.br": true,
	"co.jp": true, "com.cn": true, "com.pa": true, "co.in": true,
}

// ETLDPlusOne returns the registrable domain of host ("shop.example.co.uk"
// → "example.co.uk"). Unregistrable inputs return the input unchanged.
func ETLDPlusOne(host string) string {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	labels := strings.Split(host, ".")
	if len(labels) <= 2 {
		return host
	}
	suffix2 := strings.Join(labels[len(labels)-2:], ".")
	if publicSuffixes[suffix2] && len(labels) >= 3 {
		return strings.Join(labels[len(labels)-3:], ".")
	}
	return suffix2
}

// SameSite reports whether two hosts share a registrable domain — the
// "first-party" test ad blockers apply.
func SameSite(a, b string) bool { return ETLDPlusOne(a) == ETLDPlusOne(b) }

// IsSubdomainOf reports whether host is a strict subdomain of parent
// (shop.example.com is a subdomain of example.com; example.com is not).
func IsSubdomainOf(host, parent string) bool {
	host = strings.ToLower(host)
	parent = strings.ToLower(parent)
	return host != parent && strings.HasSuffix(host, "."+parent)
}

// PopularCDNDomains is the paper's Appendix A.5 list: domains whose
// presence in a script URL marks it as served through a shared CDN.
var PopularCDNDomains = []string{
	"cloudflare.com",
	"cloudfront.net",
	"fastly.net",
	"gstatic.com",
	"googleusercontent.com",
	"googleapis.com",
	"akamai.net",
	"azureedge.net",
	"b-cdn.net",
	"bootstrapcdn.com",
	"cdn.jsdelivr.net",
	"cdnjs.cloudflare.com",
}

// ServedFromPopularCDN reports whether the host is (a subdomain of) one of
// the popular CDN domains.
func ServedFromPopularCDN(host string) bool {
	host = strings.ToLower(host)
	for _, cdn := range PopularCDNDomains {
		if host == cdn || strings.HasSuffix(host, "."+cdn) {
			return true
		}
	}
	return false
}

// DNS resolves hostnames, following CNAME chains. It exists because CNAME
// cloaking — a first-party-looking hostname aliased to a tracker — is
// invisible to URL-level blocklist checks but visible to anyone who
// resolves the name.
type DNS struct {
	cnames map[string]string
}

// NewDNS returns an empty resolver.
func NewDNS() *DNS {
	return &DNS{cnames: map[string]string{}}
}

// AddCNAME aliases from → to.
func (d *DNS) AddCNAME(from, to string) {
	d.cnames[strings.ToLower(from)] = strings.ToLower(to)
}

// CNAMEChain returns the chain of hostnames starting at host, following
// CNAME records to the final canonical name. A host with no CNAME returns
// just itself. Chains are capped at 8 hops to break loops.
func (d *DNS) CNAMEChain(host string) []string {
	host = strings.ToLower(host)
	chain := []string{host}
	for i := 0; i < 8; i++ {
		next, ok := d.cnames[chain[len(chain)-1]]
		if !ok {
			break
		}
		chain = append(chain, next)
	}
	return chain
}

// CanonicalName returns the final name in the CNAME chain.
func (d *DNS) CanonicalName(host string) string {
	chain := d.CNAMEChain(host)
	return chain[len(chain)-1]
}

// IsCloaked reports whether host resolves through a CNAME to a different
// site (a different registrable domain).
func (d *DNS) IsCloaked(host string) bool {
	return !SameSite(host, d.CanonicalName(host))
}

// Resource is a hosted HTTP response body.
type Resource struct {
	URL  URL
	MIME string
	Body string
}

// ErrNotFound is returned by Store.Fetch for unknown URLs.
var ErrNotFound = errors.New("netsim: resource not found")

// Store is the simulated Web server fleet: a URL-addressed body store.
type Store struct {
	resources map[string]*Resource
	dns       *DNS
}

// NewStore returns an empty store using the given resolver (nil creates
// a private one).
func NewStore(dns *DNS) *Store {
	if dns == nil {
		dns = NewDNS()
	}
	return &Store{resources: map[string]*Resource{}, dns: dns}
}

// DNS exposes the store's resolver.
func (s *Store) DNS() *DNS { return s.dns }

// Host publishes body at url.
func (s *Store) Host(u URL, mime, body string) {
	s.resources[u.String()] = &Resource{URL: u, MIME: mime, Body: body}
}

// Fetch retrieves the resource at u. Fetching follows DNS: a CNAME-cloaked
// hostname serves the content hosted under its canonical name when the
// alias itself has nothing published (exactly how cloaking deployments
// work — the alias is pure DNS).
func (s *Store) Fetch(u URL) (*Resource, error) {
	if r, ok := s.resources[u.String()]; ok {
		return r, nil
	}
	canon := s.dns.CanonicalName(u.Host)
	if canon != u.Host {
		alias := u
		alias.Host = canon
		if r, ok := s.resources[alias.String()]; ok {
			// The body is served under the requested (cloaked) URL.
			return &Resource{URL: u, MIME: r.MIME, Body: r.Body}, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, u)
}

// Len returns the number of hosted resources.
func (s *Store) Len() int { return len(s.resources) }
