package netsim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFaultModelDeterministic(t *testing.T) {
	a := NewFaultModel(42, 0.3)
	b := NewFaultModel(42, 0.3)
	for i := 0; i < 500; i++ {
		site := fmt.Sprintf("site%03d.example", i)
		if a.PlanFor(site) != b.PlanFor(site) {
			t.Fatalf("plans diverge for %s", site)
		}
		for n := 0; n < 4; n++ {
			if a.Attempt(site, n) != b.Attempt(site, n) {
				t.Fatalf("attempt %d diverges for %s", n, site)
			}
		}
	}
	// Re-asking the same model must be stable too (the derivation is pure).
	if a.PlanFor("site000.example") != a.PlanFor("site000.example") {
		t.Fatal("PlanFor not stable")
	}
}

func TestFaultModelRateBoundaries(t *testing.T) {
	zero := NewFaultModel(7, 0)
	one := NewFaultModel(7, 1)
	for i := 0; i < 200; i++ {
		site := fmt.Sprintf("s%d.test", i)
		if p := zero.PlanFor(site); p.Kind != FaultNone || p.Truncate != 1 {
			t.Fatalf("rate 0 produced %+v for %s", p, site)
		}
		if p := one.PlanFor(site); p.Kind == FaultNone {
			t.Fatalf("rate 1 produced a healthy plan for %s", site)
		}
	}
	if NewFaultModel(7, -3).Rate() != 0 || NewFaultModel(7, 9).Rate() != 1 {
		t.Fatal("rate not clamped to [0,1]")
	}
}

func TestFaultModelKindDistribution(t *testing.T) {
	m := NewFaultModel(11, 0.5)
	counts := map[FaultKind]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[m.PlanFor(fmt.Sprintf("d%d.example", i)).Kind]++
	}
	healthy := counts[FaultNone]
	if healthy < n*40/100 || healthy > n*60/100 {
		t.Fatalf("healthy fraction %d/%d far from rate 0.5", healthy, n)
	}
	faulty := n - healthy
	for _, k := range []FaultKind{FaultOutage, FaultFlaky, FaultLatency, FaultTruncate} {
		if c := counts[k]; c < faulty/8 || c > faulty/2 {
			t.Fatalf("kind %s count %d is far from uniform over %d faulty sites", k, c, faulty)
		}
	}
}

// TestFlakySitesRecover pins the property the crawler's default retry
// budget relies on: flaky and latency plans fail at most 2 attempts.
func TestFlakySitesRecover(t *testing.T) {
	m := NewFaultModel(3, 1)
	for i := 0; i < 1000; i++ {
		site := fmt.Sprintf("r%d.example", i)
		p := m.PlanFor(site)
		switch p.Kind {
		case FaultFlaky, FaultLatency:
			if p.FailCount < 1 || p.FailCount > 2 {
				t.Fatalf("%s: FailCount %d outside [1,2]", site, p.FailCount)
			}
			at := m.Attempt(site, p.FailCount)
			if at.Err != nil || at.Latency > time.Second || at.Truncate != 1 {
				t.Fatalf("%s: attempt %d did not recover: %+v", site, p.FailCount, at)
			}
		case FaultTruncate:
			if p.Truncate < 0.25 || p.Truncate > 0.75 {
				t.Fatalf("%s: truncate fraction %v outside [0.25,0.75]", site, p.Truncate)
			}
			if at := m.Attempt(site, 0); at.Err != nil || at.Truncate != p.Truncate {
				t.Fatalf("%s: truncate attempt %+v", site, at)
			}
		case FaultOutage:
			for n := 0; n < 6; n++ {
				if at := m.Attempt(site, n); at.Err == nil {
					t.Fatalf("%s: outage attempt %d succeeded", site, n)
				}
			}
		default:
			t.Fatalf("%s: rate-1 model produced %s", site, p.Kind)
		}
	}
}

func TestFaultModelForce(t *testing.T) {
	m := NewFaultModel(1, 0)
	want := FaultPlan{Kind: FaultFlaky, FailCount: 2, Truncate: 1}
	m.Force("pinned.example", want)
	if got := m.PlanFor("pinned.example"); got != want {
		t.Fatalf("forced plan = %+v, want %+v", got, want)
	}
	if at := m.Attempt("pinned.example", 0); at.Err == nil {
		t.Fatal("forced flaky attempt 0 should refuse")
	}
	if at := m.Attempt("pinned.example", 2); at.Err != nil {
		t.Fatal("forced flaky attempt 2 should succeed")
	}
	if p := m.PlanFor("other.example"); p.Kind != FaultNone {
		t.Fatalf("Force leaked onto other sites: %+v", p)
	}
}

func TestFaultModelConcurrent(t *testing.T) {
	m := NewFaultModel(5, 0.4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				site := fmt.Sprintf("c%d.example", i)
				m.PlanFor(site)
				m.Attempt(site, i%3)
				if i%50 == 0 {
					m.Force(fmt.Sprintf("f%d-%d.example", g, i), FaultPlan{Kind: FaultOutage, Truncate: 1})
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFaultKindString(t *testing.T) {
	for k, want := range map[FaultKind]string{
		FaultNone: "none", FaultFlaky: "flaky", FaultLatency: "latency",
		FaultTruncate: "truncate", FaultOutage: "outage", FaultKind(99): "faultkind(99)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("FaultKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
