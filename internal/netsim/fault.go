// Fault injection: a deterministic model of the Web's failure modes.
//
// The paper's crawler lost 3,724 of 20,000 popular and 2,740 of 20,000
// tail sites to unreachable hosts, timeouts, and bot blocking (§3.1),
// and reports prevalence over the sites that survived. The simulated
// substrate is perfectly reliable unless a FaultModel says otherwise;
// the model assigns each site a seeded fault plan — refusal, latency
// spikes, truncated loads, flaky-then-healthy sequences, persistent
// outages — so the crawler's retry/timeout/circuit-breaker machinery
// exercises against the same failure classes a real crawl meets, while
// staying bit-for-bit reproducible from the seed.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"canvassing/internal/stats"
)

// FaultKind classifies a site's planned failure mode.
type FaultKind uint8

// Fault kinds, in rough order of severity.
const (
	// FaultNone marks a healthy site: every attempt succeeds promptly.
	FaultNone FaultKind = iota
	// FaultFlaky refuses the first FailCount connection attempts, then
	// serves normally — the transient errors retries exist for.
	FaultFlaky
	// FaultLatency makes the first FailCount attempts pathologically
	// slow (beyond any sane visit deadline), then recovers.
	FaultLatency
	// FaultTruncate serves the page but delivers only a prefix of its
	// resources — the partially-loaded pages a crawler must not drop.
	FaultTruncate
	// FaultOutage refuses every attempt; the site is down for the whole
	// crawl.
	FaultOutage
)

// String names the fault kind for reports and evidence events.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultFlaky:
		return "flaky"
	case FaultLatency:
		return "latency"
	case FaultTruncate:
		return "truncate"
	case FaultOutage:
		return "outage"
	}
	return fmt.Sprintf("faultkind(%d)", uint8(k))
}

// ErrRefused is the connection-refused failure a FaultModel injects.
var ErrRefused = errors.New("netsim: connection refused")

// FaultPlan is one site's deterministic failure schedule.
type FaultPlan struct {
	Kind FaultKind
	// FailCount is how many initial attempts fail before the site
	// recovers (FaultFlaky, FaultLatency).
	FailCount int
	// Truncate is the fraction of the page's resources served
	// (FaultTruncate; 1 everywhere else).
	Truncate float64
}

// Attempt is the outcome of one simulated connection attempt.
type Attempt struct {
	// Err is nil on success, ErrRefused when the connection failed.
	Err error
	// Latency is the virtual wall time the attempt took. The crawler
	// compares it against its visit deadline; nothing actually sleeps,
	// so faulted crawls run as fast as healthy ones.
	Latency time.Duration
	// Truncate is the fraction of the page's resources served when the
	// attempt succeeds (1 = the whole page).
	Truncate float64
}

// Virtual latency envelopes. Healthy loads land well under the
// crawler's default 5s deadline; spikes land well over it.
const (
	healthyLatencyMin = 100 * time.Millisecond
	healthyLatencyMax = 900 * time.Millisecond
	spikeLatencyMin   = 6 * time.Second
	spikeLatencyMax   = 30 * time.Second
	refusalLatency    = 50 * time.Millisecond
)

// FaultModel deterministically assigns fault plans to sites. Every
// decision derives from (seed, site) via forked stats.RNG substreams,
// so plans are independent of visit order and worker interleaving, and
// two models with equal seeds and rates agree on every site. The model
// is safe for concurrent use by the crawler's worker pool.
type FaultModel struct {
	seed uint64
	rate float64

	mu     sync.RWMutex
	forced map[string]FaultPlan
}

// NewFaultModel returns a model that makes rate (clamped to [0,1]) of
// all sites faulty. A rate of 0 yields FaultNone plans everywhere —
// useful for proving the resilience engine is an identity on healthy
// webs.
func NewFaultModel(seed uint64, rate float64) *FaultModel {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &FaultModel{seed: seed, rate: rate}
}

// Rate returns the configured fault probability.
func (m *FaultModel) Rate() float64 { return m.rate }

// FaultState is the serializable form of a FaultModel — what a crawl
// checkpoint stores so a resumed run rebuilds the exact same plans.
// Seed and rate are the whole derivation for unforced sites (PlanFor
// is a pure function of them), so the "cursor" into the fault stream
// is just this pair plus any forced overrides.
type FaultState struct {
	Seed   uint64               `json:"seed"`
	Rate   float64              `json:"rate"`
	Forced map[string]FaultPlan `json:"forced,omitempty"`
}

// Export captures the model's state for a checkpoint.
func (m *FaultModel) Export() FaultState {
	st := FaultState{Seed: m.seed, Rate: m.rate}
	m.mu.RLock()
	if len(m.forced) > 0 {
		st.Forced = make(map[string]FaultPlan, len(m.forced))
		for k, v := range m.forced {
			st.Forced[k] = v
		}
	}
	m.mu.RUnlock()
	return st
}

// RestoreFaultModel rebuilds a model from its exported state. The
// restored model agrees with the original on every PlanFor and
// Attempt answer.
func RestoreFaultModel(st FaultState) *FaultModel {
	m := NewFaultModel(st.Seed, st.Rate)
	for site, p := range st.Forced {
		m.Force(site, p)
	}
	return m
}

// Force pins site's plan, overriding the seeded derivation — for tests
// and what-if experiments that need a specific failure on a specific
// site.
func (m *FaultModel) Force(site string, p FaultPlan) {
	m.mu.Lock()
	if m.forced == nil {
		m.forced = map[string]FaultPlan{}
	}
	m.forced[site] = p
	m.mu.Unlock()
}

// PlanFor returns site's fault plan. The derivation is pure: it never
// mutates model state, so concurrent workers can ask freely.
func (m *FaultModel) PlanFor(site string) FaultPlan {
	m.mu.RLock()
	p, ok := m.forced[site]
	m.mu.RUnlock()
	if ok {
		return p
	}
	rng := stats.NewRNG(m.seed).Fork("fault:" + site)
	if rng.Float64() >= m.rate {
		return FaultPlan{Kind: FaultNone, Truncate: 1}
	}
	switch rng.Intn(4) {
	case 0:
		return FaultPlan{Kind: FaultOutage, Truncate: 1}
	case 1:
		return FaultPlan{Kind: FaultFlaky, FailCount: 1 + rng.Intn(2), Truncate: 1}
	case 2:
		return FaultPlan{Kind: FaultLatency, FailCount: 1 + rng.Intn(2), Truncate: 1}
	default:
		return FaultPlan{Kind: FaultTruncate, Truncate: 0.25 + 0.5*rng.Float64()}
	}
}

// Attempt simulates the n-th (0-based) connection attempt to site
// under its plan. Latencies are drawn per (site, attempt) so retries
// see fresh jitter, deterministically.
func (m *FaultModel) Attempt(site string, n int) Attempt {
	plan := m.PlanFor(site)
	rng := stats.NewRNG(m.seed).Fork(fmt.Sprintf("attempt:%s:%d", site, n))
	healthy := jitter(rng, healthyLatencyMin, healthyLatencyMax)
	switch plan.Kind {
	case FaultOutage:
		return Attempt{Err: ErrRefused, Latency: refusalLatency}
	case FaultFlaky:
		if n < plan.FailCount {
			return Attempt{Err: ErrRefused, Latency: refusalLatency}
		}
	case FaultLatency:
		if n < plan.FailCount {
			return Attempt{Latency: jitter(rng, spikeLatencyMin, spikeLatencyMax), Truncate: 1}
		}
	case FaultTruncate:
		return Attempt{Latency: healthy, Truncate: plan.Truncate}
	}
	return Attempt{Latency: healthy, Truncate: 1}
}

// jitter draws a uniform duration in [lo, hi).
func jitter(rng *stats.RNG, lo, hi time.Duration) time.Duration {
	return lo + time.Duration(rng.Float64()*float64(hi-lo))
}
