package entropy

import (
	"math"
	"testing"

	"canvassing/internal/services"
)

func TestVendorCanvasHighEntropy(t *testing.T) {
	script := services.BySlug("fingerprintjs").Source(services.ScriptParams{SiteDomain: "x"})
	r := Measure("fingerprintjs", script, 24, 1)
	if r.Errors != 0 {
		t.Fatalf("errors: %d", r.Errors)
	}
	if r.Machines != 24 {
		t.Fatalf("machines = %d", r.Machines)
	}
	// Canvas fingerprints should separate nearly every machine.
	if r.Distinct < 20 {
		t.Fatalf("distinct = %d of %d — canvas should be highly discriminating", r.Distinct, r.Machines)
	}
	if r.EntropyBits < 0.85*r.MaxBits {
		t.Fatalf("entropy %.2f of max %.2f", r.EntropyBits, r.MaxBits)
	}
	if r.Uniqueness() < 0.7 {
		t.Fatalf("uniqueness %.2f", r.Uniqueness())
	}
}

func TestTrivialCanvasLowEntropy(t *testing.T) {
	// A canvas with no anti-aliased content renders identically on every
	// machine (the coverage LUT only perturbs partial coverage).
	script := `
	var c = document.createElement('canvas');
	c.width = 50; c.height = 50;
	var x = c.getContext('2d');
	x.fillStyle = '#ff0000';
	x.fillRect(0, 0, 50, 50);
	c.toDataURL();`
	r := Measure("solid-rect", script, 16, 1)
	if r.Errors != 0 {
		t.Fatalf("errors: %d", r.Errors)
	}
	if r.Distinct != 1 {
		t.Fatalf("solid rect should be machine-invariant, got %d distinct", r.Distinct)
	}
	if r.EntropyBits != 0 {
		t.Fatalf("entropy should be zero, got %f", r.EntropyBits)
	}
	if r.LargestAnonymitySet != 16 {
		t.Fatalf("anonymity set = %d", r.LargestAnonymitySet)
	}
	if r.Uniqueness() != 0 {
		t.Fatal("nobody is unique")
	}
}

func TestTextBeatsShapes(t *testing.T) {
	// Text exercises glyph placement jitter; a plain diagonal only AA
	// coverage. Both discriminate, but text should not do worse.
	text := `
	var c = document.createElement('canvas');
	var x = c.getContext('2d');
	x.font = '14px Arial';
	x.fillText('Cwm fjordbank glyphs vext quiz', 4, 40);
	c.toDataURL();`
	line := `
	var c = document.createElement('canvas');
	var x = c.getContext('2d');
	x.beginPath(); x.moveTo(3, 7); x.lineTo(290, 141); x.stroke();
	c.toDataURL();`
	rt := Measure("text", text, 20, 2)
	rl := Measure("line", line, 20, 2)
	if rt.EntropyBits < rl.EntropyBits {
		t.Fatalf("text entropy %.2f < line entropy %.2f", rt.EntropyBits, rl.EntropyBits)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	script := services.BySlug("akamai").Source(services.ScriptParams{SiteDomain: "x"})
	a := Measure("a", script, 10, 5)
	b := Measure("a", script, 10, 5)
	if a != b {
		t.Fatal("measurement must be reproducible")
	}
	c := Measure("a", script, 10, 6)
	_ = c // different seed may or may not differ in Distinct; no panic is enough
}

func TestScriptErrorCounted(t *testing.T) {
	r := Measure("broken", "syntax error here(", 5, 1)
	if r.Errors != 5 {
		t.Fatalf("errors = %d", r.Errors)
	}
	if r.Distinct != 0 {
		t.Fatal("no fingerprints from broken script")
	}
}

func TestRank(t *testing.T) {
	rs := []Result{
		{Label: "b", EntropyBits: 1},
		{Label: "a", EntropyBits: 3},
		{Label: "c", EntropyBits: 1},
	}
	out := Rank(rs)
	if out[0].Label != "a" || out[1].Label != "b" || out[2].Label != "c" {
		t.Fatalf("rank order: %v", []string{out[0].Label, out[1].Label, out[2].Label})
	}
	if rs[0].Label != "b" {
		t.Fatal("input must not be mutated")
	}
}

func TestEntropyMath(t *testing.T) {
	// Two machines, identical fingerprints → 0 bits; all distinct →
	// log2(n) bits.
	script := services.BySlug("mailru").Source(services.ScriptParams{})
	r := Measure("mailru", script, 8, 1)
	if r.EntropyBits > r.MaxBits+1e-9 {
		t.Fatal("entropy cannot exceed max")
	}
	if r.Distinct == r.Machines && math.Abs(r.EntropyBits-r.MaxBits) > 1e-9 {
		t.Fatal("all-distinct should saturate entropy")
	}
}

func BenchmarkMeasure(b *testing.B) {
	script := services.BySlug("mailru").Source(services.ScriptParams{})
	for i := 0; i < b.N; i++ {
		Measure("mailru", script, 8, uint64(i))
	}
}
