// Package entropy measures the discriminating power of canvas
// fingerprints — the property §2 of the paper builds on ("canvas
// fingerprinting generates some of the highest entropy" among browser
// fingerprinting surfaces).
//
// It renders a fingerprinting script on a population of synthetic
// machines and reports how well the resulting canvases separate them:
// distinct fingerprints, Shannon entropy of the value distribution, and
// anonymity-set statistics. Because machine profiles perturb rendering
// deterministically, the measurement is exactly reproducible.
package entropy

import (
	"fmt"
	"math"
	"sort"

	"canvassing/internal/detect"
	"canvassing/internal/dom"
	"canvassing/internal/jsvm"
	"canvassing/internal/machine"
)

// Result summarizes one script's discriminating power over a machine
// population.
type Result struct {
	// Label identifies the script measured.
	Label string
	// Machines is the population size.
	Machines int
	// Distinct counts distinct canvas fingerprints observed.
	Distinct int
	// EntropyBits is the Shannon entropy of the fingerprint
	// distribution; MaxBits (= log2 Machines) is the ceiling.
	EntropyBits float64
	MaxBits     float64
	// LargestAnonymitySet is the size of the biggest group of machines
	// sharing a fingerprint (1 = everyone unique).
	LargestAnonymitySet int
	// UniqueMachines counts machines whose fingerprint no other machine
	// shares.
	UniqueMachines int
	// Errors counts machines whose script run failed.
	Errors int
}

// Uniqueness returns the fraction of machines with a unique fingerprint.
func (r Result) Uniqueness() float64 {
	if r.Machines == 0 {
		return 0
	}
	return float64(r.UniqueMachines) / float64(r.Machines)
}

// Measure renders the script on n synthetic machines (plus the two
// built-in profiles) and computes the distribution statistics. The
// fingerprint of a machine is the ordered concatenation of its
// fingerprintable canvas hashes.
func Measure(label, script string, n int, seed uint64) Result {
	res := Result{Label: label}
	profiles := make([]*machine.Profile, 0, n)
	profiles = append(profiles, machine.Intel(), machine.AppleM1())
	for i := 0; len(profiles) < n; i++ {
		profiles = append(profiles, machine.Synthetic(fmt.Sprintf("pop-%d-%d", seed, i)))
	}
	profiles = profiles[:n]
	res.Machines = len(profiles)

	counts := map[string]int{}
	for _, p := range profiles {
		fp, err := fingerprintOn(p, script)
		if err != nil {
			res.Errors++
			continue
		}
		counts[fp]++
	}
	res.Distinct = len(counts)
	res.MaxBits = math.Log2(float64(res.Machines))
	total := float64(res.Machines - res.Errors)
	for _, c := range counts {
		if c > res.LargestAnonymitySet {
			res.LargestAnonymitySet = c
		}
		if c == 1 {
			res.UniqueMachines++
		}
		p := float64(c) / total
		res.EntropyBits -= p * math.Log2(p)
	}
	return res
}

// fingerprintOn runs the script on one machine and returns the canvas
// fingerprint: the concatenated hashes of all extracted canvases.
func fingerprintOn(p *machine.Profile, script string) (string, error) {
	in := jsvm.New(jsvm.Options{RandSeed: 1})
	doc := dom.NewDocument(p, "entropy.local")
	var hashes []string
	doc.Tracer = tracerFunc(func(iface, member string, args []string, ret string) {
		if member == "toDataURL" && ret != "" {
			hashes = append(hashes, detect.HashDataURL(ret))
		}
	})
	doc.Install(in)
	if _, err := in.RunSource(script); err != nil {
		return "", err
	}
	out := ""
	for _, h := range hashes {
		out += h[:16]
	}
	return out, nil
}

type tracerFunc func(iface, member string, args []string, ret string)

func (f tracerFunc) Trace(iface, member string, args []string, ret string) {
	f(iface, member, args, ret)
}

// Rank orders results by entropy descending (stable on label).
func Rank(results []Result) []Result {
	out := make([]Result, len(results))
	copy(out, results)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].EntropyBits != out[j].EntropyBits {
			return out[i].EntropyBits > out[j].EntropyBits
		}
		return out[i].Label < out[j].Label
	})
	return out
}
