package canvassing

import (
	"fmt"

	"canvassing/internal/crawler"
	"canvassing/internal/distrib"
	"canvassing/internal/machine"
)

// DistribOptions configures a distributed study run: the crawl phase is
// partitioned into work-units that run as independent checkpointed
// crawl slices (in worker goroutines by default, or worker processes
// via a custom Spawn), and the merged study is byte-identical to the
// single-process run — the partition-invariance contract enforced by
// TestDistribPartitionOracle.
type DistribOptions struct {
	// Dir is the run root: unit specs, partial bundles, and the unit
	// ledger live under it.
	Dir string
	// Partitions is the number of work-units per condition (<=0
	// selects 1, which degenerates to a serial crawl per condition).
	Partitions int
	// Slots is the number of concurrent worker slots (<=0 selects 4).
	Slots int
	// MaxAttempts bounds attempts per unit (<=0 selects 3).
	MaxAttempts int
	// Arm maps unit ID → checkpoint writes before a forced mid-unit
	// stop on that unit's first attempt — the chaos-testing lever.
	Arm map[string]int
	// Spawn overrides the unit runner. Nil selects the in-process
	// runner; set a distrib.ProcessSpawner to run each attempt as a
	// spawned `crawl -distrib-unit` worker process.
	Spawn distrib.Spawner
}

// studySpec projects the study's normalized options into the wire form
// every unit spec carries.
func (s *Study) studySpec() distrib.StudySpec {
	return distrib.StudySpec{
		Seed:            s.Options.Seed,
		Scale:           s.Options.Scale,
		Workers:         s.Options.Workers,
		FaultRate:       s.Options.FaultRate,
		Retries:         s.Options.Retries,
		VisitTimeout:    s.Options.VisitTimeout,
		SnapshotReuse:   s.Options.SnapshotReuse,
		TraceVisits:     s.Options.TraceVisits,
		CheckpointEvery: s.Options.CheckpointEvery,
		Interact:        s.Options.Interact,
	}
}

// distribConditions lists the crawl conditions a distributed run
// partitions, in the serial pipeline's phase order.
func distribConditions(opts Options) []string {
	conds := []string{CondControl}
	if opts.WithAdblock {
		conds = append(conds, CondABP, CondUBO)
	}
	if opts.WithM1 {
		conds = append(conds, CondM1)
	}
	return conds
}

// unitEnv builds one work-unit's environment: the study's generated
// world plus the exact crawler configuration the serial pipeline would
// use for the unit's condition. The demo ground-truth harvest is not a
// distributable condition — it runs coordinator-side inside Analyze,
// exactly as in the serial pipeline.
func (s *Study) unitEnv(spec distrib.UnitSpec) (distrib.Env, error) {
	cfg := s.crawlConfig(spec.Condition)
	switch spec.Condition {
	case CondControl:
	case CondABP:
		cfg.Extension = newABP(s.Lists)
	case CondUBO:
		cfg.Extension = newUBO(s.Lists)
	case CondM1:
		cfg.Profile = machine.AppleM1()
	default:
		return distrib.Env{}, fmt.Errorf("canvassing: condition %q is not distributable", spec.Condition)
	}
	return distrib.Env{Web: s.Web, Sites: s.crawlSites, Config: cfg}, nil
}

// inprocSpawner runs unit attempts in-process against a shared study
// (web generation happens once). It is the default transport for tests
// and library callers; cmd/coordinator swaps in a ProcessSpawner.
type inprocSpawner struct{ s *Study }

func (sp inprocSpawner) Run(dir string, spec distrib.UnitSpec, stopAfter int) (bool, bool, error) {
	env, err := sp.s.unitEnv(spec)
	if err != nil {
		return false, false, err
	}
	return distrib.RunUnit(dir, spec, env, stopAfter)
}

// RunWorkUnit is the worker-process entry point (`crawl -distrib-unit
// <dir>`): it reads the unit spec written by the coordinator, rebuilds
// the study world from it, and runs the unit. interrupted follows the
// distrib.Spawner contract — the worker should exit
// distrib.ExitInterrupted when it is true.
func RunWorkUnit(dir string, stopAfter int) (interrupted bool, err error) {
	spec, err := distrib.ReadUnitSpec(dir)
	if err != nil {
		return false, err
	}
	st := spec.Study
	// Web, lists, and fault model are pure functions of (seed, scale,
	// fault rate), so the worker's world matches the coordinator's.
	s := New(Options{
		Seed: st.Seed, Scale: st.Scale, Workers: st.Workers,
		FaultRate: st.FaultRate, Retries: st.Retries, VisitTimeout: st.VisitTimeout,
		Interact: st.Interact,
	})
	env, err := s.unitEnv(spec)
	if err != nil {
		return false, err
	}
	interrupted, _, err = distrib.RunUnit(dir, spec, env, stopAfter)
	return interrupted, err
}

// adoptUnits loads and merges one condition's completed partials and
// replays them into the study's telemetry — metrics summed (with the
// parse-cache correction), events re-recorded in page order (which
// re-stamps the global sequence), exemplar views absorbed, snapshot
// deltas merged — and returns the recombined crawl result. The replay
// order equals the serial pipeline's, so the downstream bundle bytes
// are identical.
func (s *Study) adoptUnits(runDir string, units []distrib.UnitSpec, cond string) (*crawler.Result, error) {
	var parts []*distrib.Partial
	for _, u := range units {
		if u.Condition != cond {
			continue
		}
		p, err := distrib.LoadPartial(distrib.UnitDir(runDir, u.ID))
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	m, err := distrib.MergeCrawl(parts)
	if err != nil {
		return nil, err
	}
	if err := s.tel.Metrics.Merge(m.Metrics); err != nil {
		return nil, err
	}
	for i := range m.Events {
		s.tel.Events.Record(m.Events[i])
	}
	s.visits.Absorb(m.Exemplars)
	if s.Snapshots != nil {
		for _, st := range m.Snapshots {
			s.Snapshots.Merge(st)
		}
	}
	return &crawler.Result{
		Pages:     m.Pages,
		Machine:   m.Machine,
		Extension: m.Extension,
		Frontier:  len(m.Pages),
	}, nil
}

// RunDistributed executes the full study pipeline with the crawl phase
// partitioned across d.Partitions work-units per condition. The
// coordinator dispatches units to worker slots (reassigning and
// resuming any that die mid-unit), then each condition's partials are
// merged and the serial analysis pipeline runs coordinator-side in its
// usual order. The resulting study's bundle artifacts are
// byte-identical to Run(opts)'s.
//
// The returned ledger records every unit's assignments, retries, and
// wall time; it is returned even on error for post-mortems.
func RunDistributed(opts Options, d DistribOptions) (*Study, *distrib.Ledger, error) {
	if d.Dir == "" {
		return nil, nil, fmt.Errorf("canvassing: distributed run needs a directory")
	}
	// Study-level checkpointing and unit-level checkpointing are
	// different layers; a distributed run always uses the latter.
	opts.CheckpointDir = ""
	s := New(opts)
	units := distrib.Partition(distribConditions(opts), len(s.crawlSites), d.Partitions, s.studySpec())
	spawn := d.Spawn
	if spawn == nil {
		spawn = inprocSpawner{s}
	}
	coord := &distrib.Coordinator{
		Dir: d.Dir, Units: units, Spawn: spawn,
		Slots: d.Slots, MaxAttempts: d.MaxAttempts, Arm: d.Arm,
	}
	ledger, err := coord.Run()
	if err != nil {
		return s, ledger, err
	}

	if s.Control, err = s.adoptUnits(d.Dir, units, CondControl); err != nil {
		return s, ledger, err
	}
	s.Analyze()
	if opts.WithAdblock {
		if s.ABP, err = s.adoptUnits(d.Dir, units, CondABP); err != nil {
			return s, ledger, err
		}
		s.analyzeABP()
		if s.UBO, err = s.adoptUnits(d.Dir, units, CondUBO); err != nil {
			return s, ledger, err
		}
		s.analyzeUBO()
	}
	if opts.WithM1 {
		if s.M1, err = s.adoptUnits(d.Dir, units, CondM1); err != nil {
			return s, ledger, err
		}
		s.analyzeM1()
	}
	return s, ledger, nil
}
