# Build/verify targets. `make check` is the extended verify command
# recorded in ROADMAP.md: build + full tests + race on the concurrent
# packages + vet + a short fuzz smoke over the parsers.

GO ?= go

.PHONY: build test race vet fuzz-smoke check bench bench-smoke bench-check resume-smoke trace-smoke serve-smoke distrib-smoke interact-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The crawler worker pool, the obs registry, the evidence event sink,
# the fault model, the bundle layer, the parallel analysis executor +
# memo cache (with detect underneath it), the checkpoint writer, the
# snapshot store, the exemplar reservoir (offered from workers, read by
# /tracez), and the ops plane (status tracker, window sampler, live
# HTTP handlers) are the places goroutines share state; hammer them
# under the race detector. internal/dom rides along because every
# crawl worker drives its own event loop — the race detector proves
# the loops really are confined to their workers.
race:
	$(GO) test -race ./internal/crawler ./internal/dom ./internal/obs ./internal/obs/event ./internal/obs/window ./internal/obs/ops ./internal/obs/tracez ./internal/netsim ./internal/bundle ./internal/analysis ./internal/detect ./internal/checkpoint ./internal/snapshot ./internal/serve ./internal/distrib

vet:
	$(GO) vet ./...

# fuzz-smoke gives each parser fuzzer a short budget — enough to catch
# regressions in the URL and filter-rule grammars without stalling CI.
# Longer sessions: go test -fuzz FuzzParseRule -fuzztime 5m ./internal/blocklist
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzParseURL -fuzztime 10s ./internal/netsim
	$(GO) test -run XXX -fuzz FuzzParseRule -fuzztime 10s ./internal/blocklist
	$(GO) test -run XXX -fuzz FuzzClassifyRequest -fuzztime 10s ./internal/serve
	$(GO) test -run XXX -fuzz FuzzBlockQuery -fuzztime 10s ./internal/serve
	$(GO) test -run XXX -fuzz FuzzMergePartialBundles -fuzztime 10s ./internal/distrib
	$(GO) test -run XXX -fuzz FuzzParseProfile -fuzztime 10s ./internal/crawler

check: build test race vet fuzz-smoke bench-smoke bench-check trace-smoke serve-smoke distrib-smoke interact-smoke

# resume-smoke is the shell-level half of the resume oracle (the Go
# half is TestResumeOracle): run a checkpointed study to completion,
# run it again interrupted mid-flight (-interrupt-after exits 3),
# resume from the sidecar, and require the two bundles' deterministic
# artifacts to be byte-identical via cmp.
SMOKE := .resume-smoke
resume-smoke:
	rm -rf $(SMOKE)
	mkdir -p $(SMOKE)
	$(GO) build -o $(SMOKE)/repro ./cmd/repro
	$(SMOKE)/repro -seed 11 -scale 0.02 -exp compare -checkpoint $(SMOKE)/ckpt-ref -checkpoint-every 100 -snapshots -outdir $(SMOKE)/ref >/dev/null
	$(SMOKE)/repro -seed 11 -scale 0.02 -exp compare -checkpoint $(SMOKE)/ckpt -checkpoint-every 100 -snapshots -interrupt-after 4 >/dev/null; \
	  status=$$?; [ $$status -eq 3 ] || { echo "resume-smoke: expected exit 3 from the interrupted run, got $$status"; exit 1; }
	$(SMOKE)/repro -resume $(SMOKE)/ckpt -exp compare -outdir $(SMOKE)/resumed >/dev/null
	cmp $(SMOKE)/ref/manifest.json $(SMOKE)/resumed/manifest.json
	cmp $(SMOKE)/ref/events.jsonl $(SMOKE)/resumed/events.jsonl
	cmp $(SMOKE)/ref/report.txt $(SMOKE)/resumed/report.txt
	cmp $(SMOKE)/ref/metrics.deterministic.json $(SMOKE)/resumed/metrics.deterministic.json
	rm -rf $(SMOKE)
	@echo "resume-smoke: interrupted-then-resumed bundle is byte-identical to the uninterrupted run"

# trace-smoke is the shell-level tracescope check: run a small traced
# study with -outdir, then require tracescope to produce a critical
# path and a non-empty exemplar reservoir from the run dir.
TSMOKE := .trace-smoke
trace-smoke:
	rm -rf $(TSMOKE)
	mkdir -p $(TSMOKE)
	$(GO) build -o $(TSMOKE)/repro ./cmd/repro
	$(GO) build -o $(TSMOKE)/tracescope ./cmd/tracescope
	$(TSMOKE)/repro -seed 5 -scale 0.02 -exp compare -tracez -outdir $(TSMOKE)/run >/dev/null
	test -s $(TSMOKE)/run/trace_exemplars.jsonl
	$(TSMOKE)/tracescope $(TSMOKE)/run | grep -q "Critical path: crawl"
	$(TSMOKE)/tracescope $(TSMOKE)/run | grep -q "Slowest visits"
	$(TSMOKE)/tracescope -folded $(TSMOKE)/folded.txt $(TSMOKE)/run >/dev/null 2>&1
	grep -q "^visits;control;visit" $(TSMOKE)/folded.txt
	rm -rf $(TSMOKE)
	@echo "trace-smoke: tracescope reports a critical path and exemplar visits from a traced run dir"

# serve-smoke is the shell-level check on the verdict service: run a
# small study, serve its bundle on a free port, probe every endpoint
# with `serve -check`, and diff the responses against the committed
# expectation. A drift here means the API's bytes changed — update
# testdata/serve_smoke.expected deliberately if so.
VSMOKE := .serve-smoke
serve-smoke:
	rm -rf $(VSMOKE)
	mkdir -p $(VSMOKE)
	$(GO) build -o $(VSMOKE)/repro ./cmd/repro
	$(GO) build -o $(VSMOKE)/serve ./cmd/serve
	$(VSMOKE)/repro -seed 11 -scale 0.02 -exp compare -outdir $(VSMOKE)/run >/dev/null
	$(VSMOKE)/serve -bundle $(VSMOKE)/run -addr 127.0.0.1:0 -addr-file $(VSMOKE)/addr >$(VSMOKE)/banner.txt 2>/dev/null & echo $$! > $(VSMOKE)/pid
	for i in $$(seq 1 100); do [ -s $(VSMOKE)/addr ] && break; sleep 0.1; done; [ -s $(VSMOKE)/addr ] || { kill $$(cat $(VSMOKE)/pid) 2>/dev/null; echo "serve-smoke: server never published its address"; exit 1; }
	$(VSMOKE)/serve -check $$(cat $(VSMOKE)/addr) > $(VSMOKE)/out.txt; status=$$?; kill $$(cat $(VSMOKE)/pid) 2>/dev/null; [ $$status -eq 0 ]
	grep -q "canvassing verdict service" $(VSMOKE)/banner.txt
	diff testdata/serve_smoke.expected $(VSMOKE)/out.txt
	rm -rf $(VSMOKE)
	@echo "serve-smoke: every verdict endpoint answers byte-identically to the committed expectation"

# distrib-smoke is the shell-level half of the partition-invariance
# oracle (the Go half is TestDistribPartitionOracle): run the study
# single-process via repro, run it again as a 4-partition distributed
# study over spawned `crawl -distrib-unit` worker processes, and
# require the two bundles' deterministic artifacts to be byte-identical
# via cmp. The ledger must show a clean run (no failed units).
DSMOKE := .distrib-smoke
distrib-smoke:
	rm -rf $(DSMOKE)
	mkdir -p $(DSMOKE)
	$(GO) build -o $(DSMOKE)/repro ./cmd/repro
	$(GO) build -o $(DSMOKE)/coordinator ./cmd/coordinator
	$(GO) build -o $(DSMOKE)/crawl ./cmd/crawl
	$(DSMOKE)/repro -seed 11 -scale 0.02 -exp compare -outdir $(DSMOKE)/ref >/dev/null
	$(DSMOKE)/coordinator -seed 11 -scale 0.02 -adblock -m1 -partitions 4 -slots 3 -dir $(DSMOKE)/run -worker $(DSMOKE)/crawl -compare -out $(DSMOKE)/dist >$(DSMOKE)/ledger.txt 2>/dev/null
	grep -q "16 units, 16 done, 0 failed" $(DSMOKE)/ledger.txt
	cmp $(DSMOKE)/ref/manifest.json $(DSMOKE)/dist/manifest.json
	cmp $(DSMOKE)/ref/events.jsonl $(DSMOKE)/dist/events.jsonl
	cmp $(DSMOKE)/ref/report.txt $(DSMOKE)/dist/report.txt
	cmp $(DSMOKE)/ref/metrics.deterministic.json $(DSMOKE)/dist/metrics.deterministic.json
	rm -rf $(DSMOKE)
	@echo "distrib-smoke: 4-partition distributed study over worker processes is byte-identical to the single-process run"

# interact-smoke is the shell-level half of the interaction-engine
# contract (the Go halves are TestInteractDispatchWidthInvariance and
# TestInteractOffLeavesNoResidue): the EX3 experiment must report a
# nonzero interaction-only fingerprinter population, and a run without
# -interact must leave zero engine residue in its bundle artifacts.
ISMOKE := .interact-smoke
interact-smoke:
	rm -rf $(ISMOKE)
	mkdir -p $(ISMOKE)
	$(GO) build -o $(ISMOKE)/repro ./cmd/repro
	$(ISMOKE)/repro -seed 11 -scale 0.02 -exp ex3 -out $(ISMOKE)/ex3.txt >/dev/null
	grep -q "interaction-only fp sites:" $(ISMOKE)/ex3.txt
	! grep -q "interaction-only fp sites: 0 " $(ISMOKE)/ex3.txt
	$(ISMOKE)/repro -seed 11 -scale 0.02 -exp compare -outdir $(ISMOKE)/plain >/dev/null
	! grep -qi "interact" $(ISMOKE)/plain/events.jsonl
	! grep -qi "interact" $(ISMOKE)/plain/report.txt
	! grep -qi "interact" $(ISMOKE)/plain/metrics.json
	rm -rf $(ISMOKE)
	@echo "interact-smoke: EX3 reports interaction-only fingerprinters and the engine leaves no residue when off"

# bench runs every benchmark once and writes a dated JSON snapshot
# (BENCH_2026-08-05.json style) next to the human-readable stream.
bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./... | $(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y-%m-%d).json

# bench-smoke just proves every benchmark still runs (no snapshot).
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x ./... >/dev/null

# bench-check is the regression gate: first a self-test (a synthesized
# 10x slowdown of the committed baseline MUST trip the gate), then a
# fresh -benchtime 1x run compared against the newest committed
# BENCH_<date>.json. Thresholds live in cmd/benchdiff (loose by design:
# 1-iteration timings are noisy; only >=100µs baselines are gated).
# Override the fresh snapshot path with NEW=..., the baseline with
# BENCH_BASELINE=....
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
NEW ?= .bench-new.json
bench-check:
	@test -n "$(BENCH_BASELINE)" || { echo "bench-check: no BENCH_<date>.json baseline committed; run 'make bench' and commit it"; exit 1; }
	@if $(GO) run ./cmd/benchdiff -synthesize 10 $(BENCH_BASELINE) >/dev/null; then \
	  echo "bench-check: gate self-test FAILED (synthesized 10x regression passed)"; exit 1; \
	else echo "bench-check: gate self-test ok (synthesized regression trips the gate)"; fi
	$(GO) test -run XXX -bench . -benchtime 1x ./... | $(GO) run ./cmd/benchjson -out $(NEW)
	$(GO) run ./cmd/benchdiff $(BENCH_BASELINE) $(NEW)
	@rm -f $(NEW)
