# Build/verify targets. `make check` is the extended verify command
# recorded in ROADMAP.md: build + full tests + race on the concurrent
# packages + vet + a short fuzz smoke over the parsers.

GO ?= go

.PHONY: build test race vet fuzz-smoke check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The crawler worker pool, the obs registry, the evidence event sink,
# the fault model, the bundle layer, and the parallel analysis
# executor + memo cache (with detect underneath it) are the places
# goroutines share state; hammer them under the race detector.
race:
	$(GO) test -race ./internal/crawler ./internal/obs ./internal/obs/event ./internal/netsim ./internal/bundle ./internal/analysis ./internal/detect

vet:
	$(GO) vet ./...

# fuzz-smoke gives each parser fuzzer a short budget — enough to catch
# regressions in the URL and filter-rule grammars without stalling CI.
# Longer sessions: go test -fuzz FuzzParseRule -fuzztime 5m ./internal/blocklist
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzParseURL -fuzztime 10s ./internal/netsim
	$(GO) test -run XXX -fuzz FuzzParseRule -fuzztime 10s ./internal/blocklist

check: build test race vet fuzz-smoke

# bench runs every benchmark once and writes a dated JSON snapshot
# (BENCH_2026-08-05.json style) next to the human-readable stream.
bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./... | $(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y-%m-%d).json
