# Build/verify targets. `make check` is the extended verify command
# recorded in ROADMAP.md: build + full tests + race on the concurrent
# packages + vet.

GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The crawler worker pool, the obs registry, and the evidence event
# sink are the places goroutines share state; hammer them under the
# race detector.
race:
	$(GO) test -race ./internal/crawler ./internal/obs ./internal/obs/event

vet:
	$(GO) vet ./...

check: build test race vet

# bench runs every benchmark once and writes a dated JSON snapshot
# (BENCH_2026-08-05.json style) next to the human-readable stream.
bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./... | $(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y-%m-%d).json
