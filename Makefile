# Build/verify targets. `make check` is the extended verify command
# recorded in ROADMAP.md: build + full tests + race on the concurrent
# packages + vet.

GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The crawler worker pool and the obs registry are the two places
# goroutines share state; hammer them under the race detector.
race:
	$(GO) test -race ./internal/crawler ./internal/obs

vet:
	$(GO) vet ./...

check: build test race vet

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...
