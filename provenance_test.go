package canvassing

import (
	"strings"
	"sync"
	"testing"

	"canvassing/internal/bundle"
	"canvassing/internal/obs/event"
	"canvassing/internal/web"
)

// The decision-provenance acceptance fixture: two same-seed runs, one
// control-only, one with the ad-blocker re-crawls, shared across the
// tests below (the crawls dominate the suite's budget).
var (
	provOnce sync.Once
	provA    *Study // control only
	provB    *Study // WithAdblock
)

func provSetup(t *testing.T) (*Study, *Study) {
	t.Helper()
	provOnce.Do(func() {
		provA = Run(Options{Seed: 1, Scale: 0.02})
		provB = Run(Options{Seed: 1, Scale: 0.02, WithAdblock: true})
	})
	return provA, provB
}

// TestBundleDiffExplainsTable2 is the PR's acceptance criterion: diff
// the control bundle against the adblock bundle and the per-site
// verdict flips must sum exactly to Table 2's prevalence delta —
// the evidence log explains the aggregate, not approximates it.
func TestBundleDiffExplainsTable2(t *testing.T) {
	sA, sB := provSetup(t)
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := sA.WriteBundle(dirA); err != nil {
		t.Fatal(err)
	}
	if err := sB.WriteBundle(dirB); err != nil {
		t.Fatal(err)
	}
	a, err := bundle.Load(dirA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.Load(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.Seed != 1 || a.Manifest.Scale != 0.02 {
		t.Fatalf("manifest params wrong: %+v", a.Manifest)
	}

	t2, err := sB.Table2()
	if err != nil {
		t.Fatal(err)
	}
	control, abp := t2.Rows[0], t2.Rows[1]

	for _, cmp := range []struct {
		cond string
		row  Table2Row
	}{
		{CondControl, control},
		{CondABP, abp},
	} {
		d := bundle.Compute(a, b, CondControl, cmp.cond)
		wantA := control.SitesPop + control.SitesTail
		wantB := cmp.row.SitesPop + cmp.row.SitesTail
		if d.FPSitesA != wantA || d.FPSitesB != wantB {
			t.Fatalf("cond %s: fp sites %d/%d, Table 2 says %d/%d",
				cmp.cond, d.FPSitesA, d.FPSitesB, wantA, wantB)
		}
		// The acceptance identity: flips sum exactly to the prevalence
		// delta.
		if got, want := d.Lost()-d.Gained(), wantA-wantB; got != want {
			t.Fatalf("cond %s: flips sum to %d, Table 2 delta is %d", cmp.cond, got, want)
		}
	}

	// Same seed → identical control crawls: control-vs-control must be
	// a clean zero-flip diff, and attribution must not drift.
	d := bundle.Compute(a, b, CondControl, CondControl)
	if len(d.Flips) != 0 {
		t.Fatalf("same-seed control diff has %d flips: %+v", len(d.Flips), d.Flips)
	}
	if len(d.AttribChanges) != 0 {
		t.Fatalf("same-seed attribution drifted: %+v", d.AttribChanges)
	}

	// The adblock run blocked scripts; the counter delta must surface.
	found := false
	for _, m := range d.CounterDeltas {
		if m.Name == "crawl.scripts.blocked" && m.B > m.A {
			found = true
		}
	}
	if !found {
		t.Fatalf("blocked-scripts counter delta missing: %+v", d.CounterDeltas)
	}
}

// TestEventLogCoversDecisionKinds asserts every decision layer records
// evidence: detection, clustering, attribution, blocklist matches, and
// (after an E8 run) randomization verdicts.
func TestEventLogCoversDecisionKinds(t *testing.T) {
	_, sB := provSetup(t)
	sB.Randomization(5) // emits randomize.verdict events (cached after)
	counts := sB.Telemetry().Events.CountByKind()
	for _, kind := range []event.Kind{
		event.DetectClassify,
		event.ClusterAssign,
		event.AttribEvidence,
		event.BlocklistMatch,
		event.RandomizeVerdict,
	} {
		if counts[kind] == 0 {
			t.Fatalf("no %s events recorded; counts=%v", kind, counts)
		}
	}

	// Blocklist events must carry the matching rule and list.
	foundRule := false
	for _, e := range sB.Telemetry().Events.Events() {
		if e.Kind == event.BlocklistMatch {
			if e.Crawl != CondABP && e.Crawl != CondUBO {
				t.Fatalf("blocklist event with wrong condition: %+v", e)
			}
			if e.Evidence != "" && e.Detail != "" {
				foundRule = true
				break
			}
		}
	}
	if !foundRule {
		t.Fatal("no blocklist.match event names its rule and list")
	}

	// Detection events label site and failing heuristic.
	for _, e := range sB.Telemetry().Events.Events() {
		if e.Kind == event.DetectClassify && e.Verdict == "excluded" {
			if e.Evidence == "" || e.Site == "" {
				t.Fatalf("excluded verdict without heuristic evidence: %+v", e)
			}
			break
		}
	}

	// Attribution evidence names a mechanism on site-level events.
	for _, e := range sB.Telemetry().Events.Events() {
		if e.Kind == event.AttribEvidence && e.Site != "" {
			if e.Evidence == "" {
				t.Fatalf("attribution without mechanism: %+v", e)
			}
			break
		}
	}

	// Conditions cover all crawls the study ran.
	conds := map[string]bool{}
	for _, c := range sB.Telemetry().Events.Conditions() {
		conds[c] = true
	}
	for _, want := range []string{CondControl, CondABP, CondUBO, CondDemo} {
		if !conds[want] {
			t.Fatalf("condition %q missing from event log: %v", want, conds)
		}
	}
}

// TestClusterEventsMatchClustering cross-checks the event log against
// the clustering aggregate it narrates: one member event per (group,
// site) pair.
func TestClusterEventsMatchClustering(t *testing.T) {
	sA, _ := provSetup(t)
	want := 0
	for _, g := range sA.Clustering.Groups {
		for _, cohort := range []web.Cohort{web.Popular, web.Tail, web.Demo} {
			want += g.SiteCount(cohort)
		}
	}
	got := sA.Telemetry().Events.CountByKind()[event.ClusterAssign]
	if got != want {
		t.Fatalf("cluster.assign events = %d, clustering has %d memberships", got, want)
	}
}

// TestTelemetryReportFlagsLeakedSpans asserts the report surfaces spans
// that were started but never ended.
func TestTelemetryReportFlagsLeakedSpans(t *testing.T) {
	s := New(Options{Seed: 9, Scale: 0.005})
	clean := s.TelemetryReport()
	if strings.Contains(clean, "leaked") {
		t.Fatalf("clean run reports leaked spans:\n%s", clean)
	}
	sp := s.Telemetry().Tracer.Start("leaky.phase")
	text := s.TelemetryReport()
	if !strings.Contains(text, "leaked") || !strings.Contains(text, "leaky.phase") {
		t.Fatalf("leaked span not flagged:\n%s", text)
	}
	sp.End()
	if strings.Contains(s.TelemetryReport(), "leaked") {
		t.Fatal("ended span still reported leaked")
	}
}
