package canvassing

import (
	"fmt"
	"os"
	"path/filepath"

	"canvassing/internal/bundle"
	"canvassing/internal/imaging"
	"canvassing/internal/obs/tracez"
)

// WriteBundle writes the study's run bundle to dir: manifest.json,
// metrics.json, trace.jsonl, events.jsonl, telemetry.txt, and — when
// the analyses have run — report.txt with the full experiment suite.
// Two bundles from different runs are compared with cmd/runsdiff.
//
// With Options.TraceVisits the exemplar reservoir is also exported as
// trace_exemplars.jsonl in dir. That file is a sidecar, NOT a bundle
// artifact: it carries volatile wall-clock fields, so it stays outside
// the byte-stability contract and no bundle byte depends on it.
func (s *Study) WriteBundle(dir string) error {
	workers := s.Options.Workers
	if workers <= 0 {
		workers = 8
	}
	m := bundle.Manifest{
		Seed:    s.Options.Seed,
		Scale:   s.Options.Scale,
		Workers: workers,
		Notes:   fmt.Sprintf("canvassing study, adblock=%v m1=%v", s.Options.WithAdblock, s.Options.WithM1),
	}
	if err := bundle.Write(dir, m, s.tel); err != nil {
		return err
	}
	if s.Clustering != nil {
		if err := bundle.WriteReport(dir, "report.txt", s.RenderAll()); err != nil {
			return err
		}
	}
	if s.visits != nil {
		if err := tracez.WriteExemplars(filepath.Join(dir, tracez.ExemplarsFile), s.visits, s.tel.Tracer.Records()); err != nil {
			return err
		}
	}
	return bundle.WriteReport(dir, "telemetry.txt", s.TelemetryReport())
}

// DumpSampleCanvases writes example canvases from the control crawl to
// dir as PNG files — the Figure 2 / Appendix A.2 artifact: a handful of
// fingerprintable test canvases and one example per exclusion reason.
// It returns the file names written.
func (s *Study) DumpSampleCanvases(dir string, perKind int) ([]string, error) {
	if perKind <= 0 {
		perKind = 3
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("canvassing: %w", err)
	}
	written := []string{}
	counts := map[string]int{}
	for i := range s.Sites {
		st := &s.Sites[i]
		if !st.OK {
			continue
		}
		for _, c := range st.All {
			kind := "fingerprintable"
			if !c.Fingerprintable {
				kind = string(c.Exclude)
			}
			if counts[kind] >= perKind {
				continue
			}
			format, payload, err := imaging.ParseDataURL(c.DataURL)
			if err != nil {
				continue
			}
			ext := "png"
			switch format {
			case imaging.JPEG:
				ext = "jpg"
			case imaging.WebP:
				ext = "webp"
			}
			name := fmt.Sprintf("%s-%02d-%s-%dx%d.%s",
				kind, counts[kind], st.Domain, c.W, c.H, ext)
			path := filepath.Join(dir, name)
			if err := os.WriteFile(path, payload, 0o644); err != nil {
				return written, fmt.Errorf("canvassing: %w", err)
			}
			counts[kind]++
			written = append(written, name)
		}
	}
	if len(written) == 0 {
		return nil, fmt.Errorf("canvassing: no canvases to dump (run the control crawl first)")
	}
	return written, nil
}
