package canvassing

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"canvassing/internal/obs"
	"canvassing/internal/obs/ops"
	"canvassing/internal/obs/prom"
	"canvassing/internal/obs/window"
)

// TestOpsPlaneBundleInvariance is the ops-plane determinism oracle:
// running a study with the full live plane enabled — HTTP server on a
// real port, window sampler ticking fast, and a client hammering every
// endpoint concurrently with the run — must not change a single byte
// of the deterministic bundle artifacts. The status tracker and the
// windowed views live outside the registry snapshot; this test is what
// pins that discipline.
func TestOpsPlaneBundleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline twice")
	}
	opts := Options{Seed: 7, Scale: 0.02, Workers: 2, AnalysisWorkers: 4, WithAdblock: true, FaultRate: 0.35}

	// Reference: no ops plane.
	ref := Run(opts)
	refDir := t.TempDir()
	if err := ref.WriteBundle(refDir); err != nil {
		t.Fatal(err)
	}

	// Observed run: build the study first so the plane serves its
	// telemetry, then drive the pipeline while a scraper loops.
	s := New(opts)
	plane, err := ops.Serve("127.0.0.1:0", s.Telemetry(), false, 500*time.Millisecond, s.Visits())
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	// Tighten the sampler far below its default cadence: more snapshot
	// reads, more chances to perturb something if the discipline leaks.
	extra := window.New(s.Telemetry().Metrics, time.Second)
	extra.Start(2 * time.Millisecond)
	defer extra.Stop()

	stopScrape := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		paths := []string{"/metrics.prom", "/red", "/statusz", "/metrics", "/healthz", "/readyz", "/"}
		for i := 0; ; i++ {
			select {
			case <-stopScrape:
				return
			default:
			}
			res, err := http.Get(plane.URL() + paths[i%len(paths)])
			if err == nil {
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}
		}
	}()

	s.RunControl()
	s.Analyze()
	s.RunAdblock()
	s.Telemetry().Status.MarkDone()
	close(stopScrape)
	wg.Wait()

	obsDir := t.TempDir()
	if err := s.WriteBundle(obsDir); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"manifest.json", "events.jsonl", "report.txt", "metrics.deterministic.json"} {
		want := readFile(t, refDir, name)
		got := readFile(t, obsDir, name)
		if !bytes.Equal(got, want) {
			t.Errorf("%s changed by the live ops plane (%d vs %d bytes); first divergence at byte %d",
				name, len(got), len(want), firstDiff(got, want))
		}
	}
}

// TestStatuszLiveIntegration runs a study with the ops plane bound to
// :0 and polls /statusz over real HTTP while the pipeline executes:
// the crawl frontier must advance through the live view, the phase
// ledger must show activity, the exposition endpoint must stay valid,
// and after completion /statusz reports done with every crawl
// finished and /readyz stays 200.
func TestStatuszLiveIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline over live HTTP")
	}
	s := New(Options{Seed: 1, Scale: 0.05, Workers: 2})
	// Assemble the plane by hand so the sampler ticks far faster than
	// the production default — the visit rate (and thus the ETA) must
	// be available within this short crawl.
	view := window.New(s.Telemetry().Metrics, 10*time.Second)
	srv, err := obs.StartServer("127.0.0.1:0", ops.NewMux(s.Telemetry(), false, view, s.Visits()))
	if err != nil {
		t.Fatal(err)
	}
	plane := &ops.Plane{Server: srv, View: view}
	view.Start(2 * time.Millisecond)
	defer plane.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.RunControl()
		s.Analyze()
		s.Telemetry().Status.MarkDone()
	}()

	getStatus := func() ops.Statusz {
		t.Helper()
		res, err := http.Get(plane.URL() + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var st ops.Statusz
		if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Poll until the crawl is visibly in flight — running state, a
	// control crawl with a nonzero committed frontier — and the
	// windowed visit rate has produced an ETA for it.
	sawProgress, sawETA := false, false
	deadline := time.After(60 * time.Second)
poll:
	for !(sawProgress && sawETA) {
		select {
		case <-deadline:
			t.Fatalf("statusz never showed a crawl in flight (progress=%v eta=%v)", sawProgress, sawETA)
		case <-done:
			break poll
		default:
		}
		st := getStatus()
		for _, c := range st.Crawls {
			if c.Condition == "control" && c.Frontier > 0 && !c.Done && st.State == obs.StateRunning {
				sawProgress = true
			}
		}
		if st.ETACondition == "control" && st.ETASeconds > 0 && st.VisitRatePerSec > 0 {
			sawETA = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawProgress || !sawETA {
		// The pipeline finished before a poll caught it mid-crawl; at
		// 0.05 scale with 2 workers that means the poll loop is broken,
		// not the plane.
		t.Fatalf("crawl completed before /statusz showed it live (progress=%v eta=%v)", sawProgress, sawETA)
	}

	// The exposition endpoint must serve valid text while the crawl is
	// mutating the registry underneath it.
	res, err := http.Get(plane.URL() + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if err := prom.ValidateExposition(string(body)); err != nil {
		t.Fatalf("mid-run /metrics.prom invalid: %v", err)
	}

	<-done

	st := getStatus()
	if st.State != obs.StateDone {
		t.Fatalf("final state = %q, want done", st.State)
	}
	for _, c := range st.Crawls {
		if !c.Done || c.Frontier != c.Total {
			t.Fatalf("crawl %q not complete in final status: %+v", c.Condition, c)
		}
	}
	if len(st.Phases) == 0 {
		t.Fatal("phase ledger empty after the run")
	}
	probe, err := http.Get(plane.URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	probe.Body.Close()
	if probe.StatusCode != 200 {
		t.Fatalf("readyz after completion = %d", probe.StatusCode)
	}
}
