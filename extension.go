package canvassing

import (
	"fmt"
	"sort"
	"strings"

	"canvassing/internal/crawler"
	"canvassing/internal/entropy"
	"canvassing/internal/report"
	"canvassing/internal/services"
	"canvassing/internal/web"
)

// InnerPagesResult is the EX2 extension experiment: how much canvas
// fingerprinting a homepage-only crawl misses. The paper names this as a
// limitation (§3.2): login and other inner pages fingerprint more — this
// experiment re-crawls with inner /login pages followed and measures the
// prevalence delta.
type InnerPagesResult struct {
	// Per cohort: fingerprinting sites seen by the homepage-only crawl
	// vs by the crawl that follows inner pages.
	HomepageFPPop, InnerFPPop   int
	HomepageFPTail, InnerFPTail int
	CrawledPop, CrawledTail     int
}

// InnerPages runs EX2. It needs the control crawl (homepage baseline).
func (s *Study) InnerPages() InnerPagesResult {
	var r InnerPagesResult
	for i := range s.Sites {
		st := &s.Sites[i]
		if !st.OK {
			continue
		}
		switch st.Cohort {
		case web.Popular:
			r.CrawledPop++
			if st.HasFingerprinting() {
				r.HomepageFPPop++
			}
		case web.Tail:
			r.CrawledTail++
			if st.HasFingerprinting() {
				r.HomepageFPTail++
			}
		}
	}
	cfg := s.crawlConfig(CondInner)
	cfg.VisitInnerPages = true
	res := crawler.Crawl(s.Web, s.crawlSites, cfg)
	for _, sc := range s.analyzeAll(res.Pages, CondInner) {
		if !sc.OK || !sc.HasFingerprinting() {
			continue
		}
		switch sc.Cohort {
		case web.Popular:
			r.InnerFPPop++
		case web.Tail:
			r.InnerFPTail++
		}
	}
	return r
}

// Render formats EX2.
func (r InnerPagesResult) Render() string {
	var sb strings.Builder
	sb.WriteString("EX2 — Beyond the homepage: inner login pages (extension; §3.2 limitation)\n")
	fmt.Fprintf(&sb, "  popular: homepage-only %d fp sites (%s) → with /login %d (%s)\n",
		r.HomepageFPPop, report.Pct(r.HomepageFPPop, r.CrawledPop),
		r.InnerFPPop, report.Pct(r.InnerFPPop, r.CrawledPop))
	fmt.Fprintf(&sb, "  tail:    homepage-only %d fp sites (%s) → with /login %d (%s)\n",
		r.HomepageFPTail, report.Pct(r.HomepageFPTail, r.CrawledTail),
		r.InnerFPTail, report.Pct(r.InnerFPTail, r.CrawledTail))
	sb.WriteString("  (the paper's homepage-only prevalence is a lower bound, as §3.2 states)\n")
	return sb.String()
}

// VendorGap is one deferred vendor's share of the interaction gap:
// how many interaction-only fingerprinting sites its script pattern
// attributes.
type VendorGap struct {
	Name  string
	Sites int
}

// InteractionGapResult is the EX3 extension experiment: how much canvas
// fingerprinting a load-time crawl misses because the script waits for
// a user signal — a click, a scroll, or an idle pause — before probing
// ("Beyond the Crawl", Annamalai & De Cristofaro). The control crawl is
// the load-time baseline; the re-crawl runs the crawler's interaction
// engine, which drives a seeded per-site behaviour profile after the
// page settles.
type InteractionGapResult struct {
	// Per cohort: fingerprinting sites seen by the load-time crawl vs
	// by the interaction-driven crawl.
	LoadFPPop, InteractFPPop   int
	LoadFPTail, InteractFPTail int
	CrawledPop, CrawledTail    int
	// InteractionOnly are the domains (sorted) that fingerprint only
	// under interaction.
	InteractionOnly []string
	// Vendors attributes the interaction-only sites to the deferred
	// vendors by script-URL pattern, in services.Deferred() order.
	Vendors []VendorGap
	// Unattributed counts interaction-only sites whose extracting
	// script matches no deferred-vendor pattern (first-party bundles
	// hide the vendor host, exactly as they do in Table 1 attribution).
	Unattributed int
}

// InteractionGap runs EX3. It needs the control crawl (load-time
// baseline) and is memoized: the report renderer and the repro CLI
// share one interaction re-crawl.
func (s *Study) InteractionGap() InteractionGapResult {
	if s.interactCache != nil {
		return *s.interactCache
	}
	var r InteractionGapResult
	baseline := make(map[string]bool)
	for i := range s.Sites {
		st := &s.Sites[i]
		if !st.OK {
			continue
		}
		fp := st.HasFingerprinting()
		if fp {
			baseline[st.Domain] = true
		}
		switch st.Cohort {
		case web.Popular:
			r.CrawledPop++
			if fp {
				r.LoadFPPop++
			}
		case web.Tail:
			r.CrawledTail++
			if fp {
				r.LoadFPTail++
			}
		}
	}
	cfg := s.crawlConfig(CondInteract)
	cfg.Interact = true
	res := crawler.Crawl(s.Web, s.crawlSites, cfg)
	deferred := services.Deferred()
	vendorSites := make(map[string]map[string]bool, len(deferred))
	for _, sc := range s.analyzeAll(res.Pages, CondInteract) {
		if !sc.OK || !sc.HasFingerprinting() {
			continue
		}
		switch sc.Cohort {
		case web.Popular:
			r.InteractFPPop++
		case web.Tail:
			r.InteractFPTail++
		}
		if baseline[sc.Domain] {
			continue
		}
		r.InteractionOnly = append(r.InteractionOnly, sc.Domain)
		matched := false
		for _, c := range sc.Fingerprintable() {
			for _, v := range deferred {
				if strings.Contains(c.ScriptURL, v.URLPattern) {
					if vendorSites[v.Slug] == nil {
						vendorSites[v.Slug] = make(map[string]bool)
					}
					vendorSites[v.Slug][sc.Domain] = true
					matched = true
				}
			}
		}
		if !matched {
			r.Unattributed++
		}
	}
	sort.Strings(r.InteractionOnly)
	for _, v := range deferred {
		r.Vendors = append(r.Vendors, VendorGap{Name: v.Name, Sites: len(vendorSites[v.Slug])})
	}
	s.interactCache = &r
	return r
}

// Render formats EX3.
func (r InteractionGapResult) Render() string {
	var sb strings.Builder
	sb.WriteString("EX3 — Beyond the crawl: interaction-triggered fingerprinting (extension)\n")
	fmt.Fprintf(&sb, "  popular: load-time %d fp sites (%s) → with interaction %d (%s)\n",
		r.LoadFPPop, report.Pct(r.LoadFPPop, r.CrawledPop),
		r.InteractFPPop, report.Pct(r.InteractFPPop, r.CrawledPop))
	fmt.Fprintf(&sb, "  tail:    load-time %d fp sites (%s) → with interaction %d (%s)\n",
		r.LoadFPTail, report.Pct(r.LoadFPTail, r.CrawledTail),
		r.InteractFPTail, report.Pct(r.InteractFPTail, r.CrawledTail))
	fpLoad := r.LoadFPPop + r.LoadFPTail
	fmt.Fprintf(&sb, "  interaction-only fp sites: %d (a %s lift over the load-time population)\n",
		len(r.InteractionOnly), report.Pct(len(r.InteractionOnly), fpLoad))
	for _, v := range r.Vendors {
		fmt.Fprintf(&sb, "    %-24s %d sites\n", v.Name, v.Sites)
	}
	if r.Unattributed > 0 {
		fmt.Fprintf(&sb, "    %-24s %d sites (first-party bundles hide the vendor host)\n",
			"unattributed", r.Unattributed)
	}
	sb.WriteString("  (timer-deferred probes like Forter fire under the settle drain, so they\n")
	sb.WriteString("   count as load-time; only gesture/idle-gated vendors create the gap)\n")
	return sb.String()
}

// EntropyAnalysisResult is the EX1 extension experiment: discriminating
// power of each vendor's test canvases across a machine population. It
// substantiates the premise the whole study rests on (§2: canvas
// fingerprinting yields some of the highest entropy of any surface).
type EntropyAnalysisResult struct {
	Machines int
	Results  []entropy.Result
}

// EntropyAnalysis renders every vendor's fingerprinting script on a
// population of synthetic machines and ranks the vendors by the Shannon
// entropy of the resulting canvas fingerprints. It does not require any
// crawl. machines <= 0 selects 32.
func EntropyAnalysis(machines int, seed uint64) EntropyAnalysisResult {
	if machines <= 0 {
		machines = 32
	}
	res := EntropyAnalysisResult{Machines: machines}
	for _, v := range services.Registry() {
		script := v.Source(services.ScriptParams{SiteDomain: "entropy.local"})
		res.Results = append(res.Results, entropy.Measure(v.Name, script, machines, seed))
	}
	res.Results = entropy.Rank(res.Results)
	return res
}

// Render formats EX1.
func (r EntropyAnalysisResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("EX1 — Canvas fingerprint entropy over %d machines (extension)", r.Machines),
		"script", "distinct", "entropy(bits)", "max(bits)", "unique", "largest-set")
	for _, e := range r.Results {
		t.AddRow(e.Label, e.Distinct,
			fmt.Sprintf("%.2f", e.EntropyBits), fmt.Sprintf("%.2f", e.MaxBits),
			report.Pct(e.UniqueMachines, e.Machines), e.LargestAnonymitySet)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteString("  (a solid-color canvas scores 0 bits: only anti-aliased, text-heavy\n")
	sb.WriteString("   canvases separate machines — which is why test canvases draw pangrams)\n")
	return sb.String()
}
