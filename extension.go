package canvassing

import (
	"fmt"
	"strings"

	"canvassing/internal/crawler"
	"canvassing/internal/entropy"
	"canvassing/internal/report"
	"canvassing/internal/services"
	"canvassing/internal/web"
)

// InnerPagesResult is the EX2 extension experiment: how much canvas
// fingerprinting a homepage-only crawl misses. The paper names this as a
// limitation (§3.2): login and other inner pages fingerprint more — this
// experiment re-crawls with inner /login pages followed and measures the
// prevalence delta.
type InnerPagesResult struct {
	// Per cohort: fingerprinting sites seen by the homepage-only crawl
	// vs by the crawl that follows inner pages.
	HomepageFPPop, InnerFPPop   int
	HomepageFPTail, InnerFPTail int
	CrawledPop, CrawledTail     int
}

// InnerPages runs EX2. It needs the control crawl (homepage baseline).
func (s *Study) InnerPages() InnerPagesResult {
	var r InnerPagesResult
	for i := range s.Sites {
		st := &s.Sites[i]
		if !st.OK {
			continue
		}
		switch st.Cohort {
		case web.Popular:
			r.CrawledPop++
			if st.HasFingerprinting() {
				r.HomepageFPPop++
			}
		case web.Tail:
			r.CrawledTail++
			if st.HasFingerprinting() {
				r.HomepageFPTail++
			}
		}
	}
	cfg := s.crawlConfig(CondInner)
	cfg.VisitInnerPages = true
	res := crawler.Crawl(s.Web, s.crawlSites, cfg)
	for _, sc := range s.analyzeAll(res.Pages, CondInner) {
		if !sc.OK || !sc.HasFingerprinting() {
			continue
		}
		switch sc.Cohort {
		case web.Popular:
			r.InnerFPPop++
		case web.Tail:
			r.InnerFPTail++
		}
	}
	return r
}

// Render formats EX2.
func (r InnerPagesResult) Render() string {
	var sb strings.Builder
	sb.WriteString("EX2 — Beyond the homepage: inner login pages (extension; §3.2 limitation)\n")
	fmt.Fprintf(&sb, "  popular: homepage-only %d fp sites (%s) → with /login %d (%s)\n",
		r.HomepageFPPop, report.Pct(r.HomepageFPPop, r.CrawledPop),
		r.InnerFPPop, report.Pct(r.InnerFPPop, r.CrawledPop))
	fmt.Fprintf(&sb, "  tail:    homepage-only %d fp sites (%s) → with /login %d (%s)\n",
		r.HomepageFPTail, report.Pct(r.HomepageFPTail, r.CrawledTail),
		r.InnerFPTail, report.Pct(r.InnerFPTail, r.CrawledTail))
	sb.WriteString("  (the paper's homepage-only prevalence is a lower bound, as §3.2 states)\n")
	return sb.String()
}

// EntropyAnalysisResult is the EX1 extension experiment: discriminating
// power of each vendor's test canvases across a machine population. It
// substantiates the premise the whole study rests on (§2: canvas
// fingerprinting yields some of the highest entropy of any surface).
type EntropyAnalysisResult struct {
	Machines int
	Results  []entropy.Result
}

// EntropyAnalysis renders every vendor's fingerprinting script on a
// population of synthetic machines and ranks the vendors by the Shannon
// entropy of the resulting canvas fingerprints. It does not require any
// crawl. machines <= 0 selects 32.
func EntropyAnalysis(machines int, seed uint64) EntropyAnalysisResult {
	if machines <= 0 {
		machines = 32
	}
	res := EntropyAnalysisResult{Machines: machines}
	for _, v := range services.Registry() {
		script := v.Source(services.ScriptParams{SiteDomain: "entropy.local"})
		res.Results = append(res.Results, entropy.Measure(v.Name, script, machines, seed))
	}
	res.Results = entropy.Rank(res.Results)
	return res
}

// Render formats EX1.
func (r EntropyAnalysisResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("EX1 — Canvas fingerprint entropy over %d machines (extension)", r.Machines),
		"script", "distinct", "entropy(bits)", "max(bits)", "unique", "largest-set")
	for _, e := range r.Results {
		t.AddRow(e.Label, e.Distinct,
			fmt.Sprintf("%.2f", e.EntropyBits), fmt.Sprintf("%.2f", e.MaxBits),
			report.Pct(e.UniqueMachines, e.Machines), e.LargestAnonymitySet)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteString("  (a solid-color canvas scores 0 bits: only anti-aliased, text-heavy\n")
	sb.WriteString("   canvases separate machines — which is why test canvases draw pangrams)\n")
	return sb.String()
}
