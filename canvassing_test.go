package canvassing

import (
	"os"
	"strings"
	"sync"
	"testing"

	"canvassing/internal/web"
)

// sharedStudy runs the full pipeline once (expensive) and is reused by
// every test in this package.
var (
	studyOnce sync.Once
	study     *Study
)

func getStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		study = Run(Options{Seed: 7, Scale: 0.05, WithAdblock: true, WithM1: true})
	})
	return study
}

func TestPrevalenceMatchesPaperShape(t *testing.T) {
	s := getStudy(t)
	prev := s.Prevalence()
	if len(prev.Rows) != 2 {
		t.Fatal("two cohorts")
	}
	pop, tail := prev.Rows[0], prev.Rows[1]
	popPct := float64(pop.FPSites) / float64(pop.CrawledOK)
	tailPct := float64(tail.FPSites) / float64(tail.CrawledOK)
	if popPct < 0.09 || popPct > 0.17 {
		t.Fatalf("popular prevalence %.3f, want ~0.127", popPct)
	}
	if tailPct < 0.06 || tailPct > 0.14 {
		t.Fatalf("tail prevalence %.3f, want ~0.099", tailPct)
	}
	if popPct <= tailPct {
		t.Fatal("popular prevalence should exceed tail (paper: 12.7% vs 9.9%)")
	}
	if pop.Max < 30 {
		t.Fatalf("max canvases = %.0f, want the 60-canvas outlier", pop.Max)
	}
	if pop.Median < 1 || pop.Median > 3 {
		t.Fatalf("median = %.1f, want ~2", pop.Median)
	}
}

func TestFigure1Shape(t *testing.T) {
	s := getStudy(t)
	fig := s.Figure1(50)
	if len(fig.Rows) < 20 {
		t.Fatalf("only %d canvas groups", len(fig.Rows))
	}
	// Long-tailed: the first bar dwarfs the last.
	if fig.Rows[0].PopularSites < 5*maxInt(fig.Rows[len(fig.Rows)-1].PopularSites, 1) {
		t.Fatalf("distribution not long-tailed: first=%d last=%d",
			fig.Rows[0].PopularSites, fig.Rows[len(fig.Rows)-1].PopularSites)
	}
	// The Shopify outlier exists: much more tail than popular.
	if fig.ShopifyOutlier < 0 {
		t.Fatal("no tail outlier found")
	}
	out := fig.Rows[fig.ShopifyOutlier]
	if out.TailSites <= 2*out.PopularSites {
		t.Fatalf("outlier not pronounced: pop=%d tail=%d", out.PopularSites, out.TailSites)
	}
	if out.Vendor != "shopify" {
		t.Fatalf("outlier attributed to %q, want shopify", out.Vendor)
	}
	// Rendering works and marks the outlier.
	text := fig.Render()
	if !strings.Contains(text, "tail outlier") {
		t.Fatal("render should mark the outlier")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestReachShape(t *testing.T) {
	s := getStudy(t)
	r := s.Reach()
	if r.UniquePopular <= r.UniqueTail {
		t.Fatalf("popular cohort should have more unique canvases: %d vs %d",
			r.UniquePopular, r.UniqueTail)
	}
	top6Pop := float64(r.Top6CoveredPop) / float64(r.TotalFPPop)
	top6Tail := float64(r.Top6CoveredTail) / float64(r.TotalFPTail)
	if top6Pop < 0.5 || top6Pop > 0.85 {
		t.Fatalf("top-6 popular coverage %.2f, want ~0.70", top6Pop)
	}
	if top6Tail >= top6Pop {
		t.Fatal("top-6 coverage should be lower among tail sites (47.1% vs 70.1%)")
	}
	overlap := float64(r.Overlap.TailSharingWithTop) / float64(r.Overlap.TailFPSites)
	if overlap < 0.75 {
		t.Fatalf("tail-popular canvas overlap %.2f, want ~0.91", overlap)
	}
	// Single-vendor reach bounded around 3% of the full cohort
	// (23% of fp sites ≈ 3% of crawled sites).
	prev := s.Prevalence()
	reachOfCohort := float64(r.TopGroupPopularSites) / float64(prev.Rows[0].CrawledOK)
	if reachOfCohort > 0.06 {
		t.Fatalf("single canvas reach %.3f of cohort, paper bound ~0.03", reachOfCohort)
	}
}

func TestTable1Shape(t *testing.T) {
	s := getStudy(t)
	t1 := s.Table1()
	rows := map[string]VendorRow{}
	for _, r := range t1.Rows {
		rows[r.Vendor] = r
	}
	ak, fp := rows["Akamai"], rows["FingerprintJS"]
	// Akamai and FingerprintJS dominate the popular cohort (~23%/~22%).
	if ak.Popular < t1.FPPop/8 {
		t.Fatalf("akamai popular share too low: %d of %d", ak.Popular, t1.FPPop)
	}
	if fp.Popular < t1.FPPop/8 {
		t.Fatalf("fpjs popular share too low: %d of %d", fp.Popular, t1.FPPop)
	}
	// Shopify dominates the tail (27% tail vs 2% popular).
	sh := rows["Shopify"]
	if sh.Tail <= sh.Popular {
		t.Fatal("shopify must skew tail-ward")
	}
	// Attribution covers roughly 73%/71% of fingerprinting sites.
	popShare := float64(t1.AttributedPop) / float64(t1.FPPop)
	tailShare := float64(t1.AttributedTail) / float64(t1.FPTail)
	if popShare < 0.55 || popShare > 0.9 {
		t.Fatalf("popular attribution share %.2f, want ~0.73", popShare)
	}
	if tailShare < 0.55 || tailShare > 0.9 {
		t.Fatalf("tail attribution share %.2f, want ~0.71", tailShare)
	}
	// mail.ru reach: a third of .ru popular sites — proxy check: nonzero
	// and concentrated.
	if rows["mail.ru"].Popular == 0 {
		t.Fatal("mail.ru missing")
	}
}

func TestTable2Shape(t *testing.T) {
	s := getStudy(t)
	t2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 3 {
		t.Fatal("three conditions")
	}
	control, abp, ubo := t2.Rows[0], t2.Rows[1], t2.Rows[2]
	for _, blocked := range []Table2Row{abp, ubo} {
		if blocked.CanvasesPop > control.CanvasesPop || blocked.SitesPop > control.SitesPop {
			t.Fatal("blocking cannot increase counts")
		}
		drop := float64(control.CanvasesPop-blocked.CanvasesPop) / float64(control.CanvasesPop)
		// §5.2: "only decreased by about 5%".
		if drop > 0.15 {
			t.Fatalf("%s canvas drop %.2f, want ~0.05", blocked.Condition, drop)
		}
		if drop == 0 {
			t.Fatalf("%s blocked nothing", blocked.Condition)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	s := getStudy(t)
	t4 := s.Table4()
	if t4.Totals[0] == 0 || t4.Totals[1] == 0 {
		t.Fatal("no canvases")
	}
	pct := func(name string, idx int) float64 {
		return float64(t4.Counts[name][idx]) / float64(t4.Totals[idx])
	}
	// Ordering: EasyPrivacy > EasyList > Disconnect (36% > 31% > 21%).
	if !(pct("EasyPrivacy", 0) > pct("Disconnect", 0)) {
		t.Fatalf("EP (%.2f) should exceed Disconnect (%.2f)", pct("EasyPrivacy", 0), pct("Disconnect", 0))
	}
	// Any-list coverage is a large minority (paper 45%/37%).
	if pct("Any", 0) < 0.25 || pct("Any", 0) > 0.6 {
		t.Fatalf("Any coverage %.2f, want ~0.45", pct("Any", 0))
	}
	if pct("Any", 1) >= pct("Any", 0) {
		t.Fatal("tail coverage should be below popular (37% vs 45%)")
	}
	// All-three coverage is a meaningful but small slice.
	if t4.Counts["All"][0] == 0 {
		t.Fatal("some canvases must be covered by all three lists")
	}
	if pct("All", 0) >= pct("Disconnect", 0) {
		t.Fatal("All must be below each individual list")
	}
}

func TestEvasionShape(t *testing.T) {
	s := getStudy(t)
	ev := s.Evasion()
	pop, tail := ev.Rows[0], ev.Rows[1]
	fpPop := float64(pop.FirstPartySites) / float64(pop.FPSites)
	fpTail := float64(tail.FirstPartySites) / float64(tail.FPSites)
	if fpPop < 0.35 || fpPop > 0.65 {
		t.Fatalf("popular first-party share %.2f, want ~0.49", fpPop)
	}
	if fpTail < 0.35 || fpTail > 0.68 {
		t.Fatalf("tail first-party share %.2f, want ~0.52", fpTail)
	}
	subPop := float64(pop.SubdomainSites) / float64(pop.FPSites)
	subTail := float64(tail.SubdomainSites) / float64(tail.FPSites)
	if subPop < 0.04 || subPop > 0.18 {
		t.Fatalf("popular subdomain share %.2f, want ~0.095", subPop)
	}
	if subTail >= subPop {
		t.Fatal("subdomain routing should skew popular (9.5% vs 2.1%)")
	}
	if pop.CDNSites == 0 {
		t.Fatal("some CDN-served scripts expected")
	}
}

func TestRandomizationShape(t *testing.T) {
	s := getStudy(t)
	r := s.Randomization(30)
	frac := float64(r.CheckingPop+r.CheckingTail) / float64(r.FPPop+r.FPTail)
	if frac < 0.3 || frac > 0.65 {
		t.Fatalf("double-render check fraction %.2f, want ~0.45", frac)
	}
	if r.SampleSites == 0 {
		t.Fatal("no double-rendering sites sampled")
	}
	if r.PerRenderDetected != r.SampleSites {
		t.Fatalf("per-render noise detected on %d/%d sites, want all", r.PerRenderDetected, r.SampleSites)
	}
	if r.PerSessionDetected != 0 {
		t.Fatalf("per-session noise detected on %d sites, want 0 (footnote 7)", r.PerSessionDetected)
	}
}

func TestCrossMachineShape(t *testing.T) {
	s := getStudy(t)
	cm, err := s.CrossMachine()
	if err != nil {
		t.Fatal(err)
	}
	if !cm.GroupingConsistent {
		t.Fatal("grouping must be invariant across machines (§3.1)")
	}
	if cm.BytesDifferEvents == 0 {
		t.Fatal("canvas bytes must differ across machines")
	}
	if cm.BytesDifferEvents < cm.EventsCompared/2 {
		t.Fatalf("too few byte differences: %d of %d", cm.BytesDifferEvents, cm.EventsCompared)
	}
}

func TestFiltersShape(t *testing.T) {
	s := getStudy(t)
	f := s.Filters()
	pop := f.PerCohort[web.Popular]
	yield := float64(pop.Fingerprintable) / float64(pop.TotalExtractions)
	if yield < 0.7 || yield > 0.95 {
		t.Fatalf("fingerprintable yield %.2f, want ~0.83", yield)
	}
	if pop.SitesFullyExcluded == 0 {
		t.Fatal("fully-excluded sites expected (A.2: 155)")
	}
}

func TestTable3AndRuleContext(t *testing.T) {
	s := getStudy(t)
	t3 := s.Table3()
	if len(t3.Rows) != 13 {
		t.Fatalf("Table 3 rows = %d", len(t3.Rows))
	}
	methods := map[string]string{}
	for _, r := range t3.Rows {
		methods[r.Vendor] = r.Method
	}
	if methods["Akamai"] != "demo" || methods["Imperva"] != "url-regexp" {
		t.Fatalf("methods: %v", methods)
	}
	rc := s.RuleContext()
	if rc.DocumentOnlyRules != 828 {
		t.Fatalf("document-only rules = %d, want 828", rc.DocumentOnlyRules)
	}
	if !rc.MgidListed || rc.MgidMatchesScript || rc.MgidBlockedLive {
		t.Fatalf("mgid gap not reproduced: %+v", rc)
	}
	if !rc.BlockedByEasyPriv {
		t.Fatal("EasyPrivacy should cover mgid scripts")
	}
}

func TestRenderAllComplete(t *testing.T) {
	s := getStudy(t)
	text := s.RenderAll()
	for _, want := range []string{
		"E1 —", "E2 —", "E3 —", "E4 —", "E5 —", "E6 —",
		"E7 —", "E8 —", "E9 —", "E10 —", "E11 —", "E12 —",
		"Akamai", "FingerprintJS", "Shopify",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	cmp := s.PaperComparison()
	if !strings.Contains(cmp, "paper: 12.7%") {
		t.Fatal("comparison missing paper baselines")
	}
}

func TestMissingCrawlErrors(t *testing.T) {
	s := New(Options{Seed: 3, Scale: 0.01})
	s.RunControl()
	s.Analyze()
	if _, err := s.Table2(); err == nil {
		t.Fatal("Table2 must require WithAdblock")
	}
	if _, err := s.CrossMachine(); err == nil {
		t.Fatal("CrossMachine must require WithM1")
	}
	// RenderAll still works, skipping those sections.
	text := s.RenderAll()
	if !strings.Contains(text, "skipped") {
		t.Fatal("render should note skipped experiments")
	}
}

func TestDumpSampleCanvases(t *testing.T) {
	s := getStudy(t)
	dir := t.TempDir()
	files, err := s.DumpSampleCanvases(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no files written")
	}
	kinds := map[string]bool{}
	for _, f := range files {
		for _, kind := range []string{"fingerprintable", "lossy-format", "small-canvas", "animation-script"} {
			if strings.HasPrefix(f, kind) {
				kinds[kind] = true
			}
		}
		if _, err := os.Stat(dir + "/" + f); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}
	for _, want := range []string{"fingerprintable", "lossy-format", "small-canvas"} {
		if !kinds[want] {
			t.Fatalf("missing artifact kind %s (got %v)", want, kinds)
		}
	}
}

func TestInnerPagesExtension(t *testing.T) {
	s := getStudy(t)
	r := s.InnerPages()
	if r.CrawledPop == 0 || r.CrawledTail == 0 {
		t.Fatal("no crawled sites")
	}
	// Following inner pages can only reveal MORE fingerprinting.
	if r.InnerFPPop < r.HomepageFPPop || r.InnerFPTail < r.HomepageFPTail {
		t.Fatalf("inner crawl lost sites: %d→%d / %d→%d",
			r.HomepageFPPop, r.InnerFPPop, r.HomepageFPTail, r.InnerFPTail)
	}
	// And it should reveal a measurable amount (login-page security
	// deployments were planted).
	if r.InnerFPPop == r.HomepageFPPop {
		t.Fatal("inner pages should add fingerprinting sites")
	}
	if !strings.Contains(r.Render(), "EX2") {
		t.Fatal("render")
	}
}

func TestEntropyAnalysisPublicAPI(t *testing.T) {
	r := EntropyAnalysis(12, 3)
	if r.Machines != 12 || len(r.Results) != 13 {
		t.Fatalf("machines=%d vendors=%d", r.Machines, len(r.Results))
	}
	// Ranked descending.
	for i := 1; i < len(r.Results); i++ {
		if r.Results[i].EntropyBits > r.Results[i-1].EntropyBits {
			t.Fatal("results not ranked")
		}
	}
	if !strings.Contains(r.Render(), "EX1") {
		t.Fatal("render")
	}
}

func TestPaperComparisonCoversAllMetrics(t *testing.T) {
	s := getStudy(t)
	cmp := s.PaperComparison()
	for _, metric := range []string{
		"prevalence", "canvases per fp site", "unique canvases",
		"top-6 canvas coverage", "sharing canvases with popular",
		"tail-only canvas group", "attributed share",
		"EasyList coverage", "EasyPrivacy coverage", "Disconnect coverage",
		"any-list coverage", "all-three coverage",
		"first-party canvas", "subdomain-served", "CDN-served",
		"double-render check", "fingerprintable share",
		"Adblock Plus", "uBlock Origin", "cross-machine grouping",
	} {
		if !strings.Contains(cmp, metric) {
			t.Fatalf("comparison ledger missing metric %q", metric)
		}
	}
}

func TestStudyDeterminism(t *testing.T) {
	a := Run(Options{Seed: 9, Scale: 0.01})
	b := Run(Options{Seed: 9, Scale: 0.01})
	if a.RenderAll() != b.RenderAll() {
		t.Fatal("identical options must reproduce the identical report")
	}
}
