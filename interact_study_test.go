package canvassing

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"canvassing/internal/services"
)

// The interaction engine's study-level contracts:
//
//  1. Width invariance — an interaction-enabled study must produce
//     byte-identical deterministic bundle artifacts at any crawl and
//     analysis pool width. The engine runs inside visit(), so its
//     telemetry (interact metrics, interact.dispatch events, the EX3
//     re-crawl's analysis events) rides the same ordered-commit
//     pipeline the oracle in determinism_test.go pins for load-time
//     crawls; this is the oracle for the new axis.
//
//  2. Interrupt/resume — a checkpointed interaction study interrupted
//     mid-control-crawl and resumed must reproduce the uninterrupted
//     bundle, EX3 re-crawl included.
//
//  3. Zero-residue off switch — with Options.Interact false, no bundle
//     artifact and no generated site may carry any trace of the
//     engine: no deferred deployments, no interact metrics, no
//     interact.dispatch events, no EX3 report section. Together with
//     the existing determinism oracle this pins the "Interact=false is
//     byte-identical to builds without the engine" guarantee.

// interactOpts is the shared run shape: small web, fault injection on
// one seed so dispatches interleave with retries, tracing on because
// exemplar capture must stay invisible.
func interactOpts(seed uint64, workers int, fault float64) Options {
	return Options{
		Seed:            seed,
		Scale:           0.02,
		Workers:         workers,
		AnalysisWorkers: workers,
		FaultRate:       fault,
		TraceVisits:     true,
		Interact:        true,
	}
}

// interactBundle runs the interaction pipeline (control crawl, full
// analysis, and — via the report render — the EX3 interaction
// re-crawl) and writes its bundle.
func interactBundle(t *testing.T, seed uint64, workers int, fault float64) string {
	t.Helper()
	s := Run(interactOpts(seed, workers, fault))
	// Force the lazy EX3 re-crawl through the same width under test;
	// WriteBundle's report render would do this anyway, but being
	// explicit keeps the test honest if report sections move.
	s.InteractionGap()
	return writeBundleDir(t, s)
}

func TestInteractDispatchWidthInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the interaction pipeline at several widths")
	}
	cases := []struct {
		seed  uint64
		fault float64
	}{
		{seed: 7, fault: 0},
		{seed: 42, fault: 0.35},
	}
	for _, c := range cases {
		refDir := interactBundle(t, c.seed, 1, c.fault)
		for _, width := range []int{8} {
			gotDir := interactBundle(t, c.seed, width, c.fault)
			for _, name := range []string{"events.jsonl", "report.txt"} {
				want := readFile(t, refDir, name)
				got := readFile(t, gotDir, name)
				if !bytes.Equal(got, want) {
					t.Errorf("seed %d width %d: %s diverges from serial (%d vs %d bytes; first diff at %d)",
						c.seed, width, name, len(got), len(want), firstDiff(got, want))
				}
			}
			// The manifest records the pool width and the metrics carry
			// the width gauge/utilization histogram; mask those exactly
			// as the crawl-width oracle in internal/crawler does and
			// require everything else to match.
			want := maskWidth(t, readFile(t, refDir, "manifest.json"))
			got := maskWidth(t, readFile(t, gotDir, "manifest.json"))
			if !bytes.Equal(got, want) {
				t.Errorf("seed %d width %d: manifest diverges beyond the workers field\n got: %s\nwant: %s",
					c.seed, width, got, want)
			}
			want = maskWidth(t, deterministicMetrics(t, refDir))
			got = maskWidth(t, deterministicMetrics(t, gotDir))
			if !bytes.Equal(got, want) {
				t.Errorf("seed %d width %d: deterministic metrics diverge\n got: %s\nwant: %s",
					c.seed, width, got, want)
			}
		}
		// The oracle is vacuous unless the run actually dispatched.
		ev := readFile(t, refDir, "events.jsonl")
		if !bytes.Contains(ev, []byte(`"interact.dispatch"`)) {
			t.Fatalf("seed %d: no interact.dispatch events; the width oracle tested nothing", c.seed)
		}
	}
}

// maskWidth strips the only values legitimately tied to the crawl pool
// width — the manifest's workers field, the crawl.workers gauge, and
// the worker-utilization histogram — and re-marshals with sorted keys
// so the rest of the document compares byte-for-byte.
func maskWidth(t *testing.T, doc []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(doc, &v); err != nil {
		t.Fatal(err)
	}
	var strip func(any)
	strip = func(n any) {
		switch m := n.(type) {
		case map[string]any:
			delete(m, "workers")
			delete(m, "crawl.workers")
			delete(m, "crawl.worker.utilization")
			for _, c := range m {
				strip(c)
			}
		case []any:
			for _, c := range m {
				strip(c)
			}
		}
	}
	strip(v)
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestInteractResumeOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the interaction pipeline three times")
	}
	opts := interactOpts(7, 8, 0.35)
	opts.CheckpointEvery = 100
	opts.SnapshotReuse = true

	// Baseline: uninterrupted.
	base := opts
	base.CheckpointDir = t.TempDir()
	ref := checkpointedRun(base, 0)
	if ref.Halted {
		t.Fatal("baseline halted without a StopAfter")
	}
	refDir := writeBundleDir(t, ref)

	// Interrupt mid-control-crawl, then resume.
	ckptDir := t.TempDir()
	cut := opts
	cut.CheckpointDir = ckptDir
	interrupted := checkpointedRun(cut, 4)
	if !interrupted.Halted {
		t.Fatal("StopAfter 4 did not interrupt the study")
	}
	resumed, err := Resume(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Options.Interact {
		t.Fatal("resume dropped Options.Interact")
	}
	gotDir := writeBundleDir(t, resumed)

	for _, name := range []string{"manifest.json", "events.jsonl", "report.txt"} {
		want := readFile(t, refDir, name)
		got := readFile(t, gotDir, name)
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs after resume (%d vs %d bytes; first diff at %d)",
				name, len(got), len(want), firstDiff(got, want))
		}
	}
	if got, want := deterministicMetrics(t, gotDir), deterministicMetrics(t, refDir); !bytes.Equal(got, want) {
		t.Errorf("deterministic metrics differ after resume\n got: %s\nwant: %s", got, want)
	}
}

func TestInteractOffLeavesNoResidue(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	opts := interactOpts(7, 4, 0)
	opts.Interact = false
	s := Run(opts)
	dir := writeBundleDir(t, s)

	// No deferred deployment may exist in the generated world, and no
	// site may reference a deferred vendor's host.
	for domain, deps := range s.Web.Truth {
		for _, d := range deps {
			if d.Deferred {
				t.Fatalf("Interact=false planted deferred vendor %s on %s", d.VendorSlug, domain)
			}
		}
	}
	patterns := make([]string, 0, 4)
	for _, v := range services.Deferred() {
		patterns = append(patterns, v.URLPattern)
	}
	for _, site := range s.Web.Sites {
		for _, sc := range site.Scripts {
			for _, pat := range patterns {
				if strings.Contains(sc.URL.Host, pat) {
					t.Fatalf("Interact=false site %s references deferred host %s", site.Domain, sc.URL.Host)
				}
			}
		}
	}

	// No bundle artifact may mention the engine.
	for _, name := range []string{"events.jsonl", "report.txt", "metrics.deterministic.json"} {
		var body []byte
		if name == "metrics.deterministic.json" {
			body = deterministicMetrics(t, dir)
		} else {
			body = readFile(t, dir, name)
		}
		if bytes.Contains(bytes.ToLower(body), []byte("interact")) {
			t.Errorf("Interact=false left engine residue in %s", name)
		}
	}
}

// TestInteractionGapReportsGap pins the experiment's headline: on an
// interaction-enabled web the EX3 result must report a nonzero
// population of interaction-only fingerprinters, attribute at least one
// gated vendor, and attribute nothing to timer-deferred Forter (the
// settle drain already surfaces it at load time).
func TestInteractionGapReportsGap(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline plus the EX3 re-crawl")
	}
	s := Run(interactOpts(7, 4, 0))
	r := s.InteractionGap()
	if len(r.InteractionOnly) == 0 {
		t.Fatal("no interaction-only fingerprinting sites at smoke scale")
	}
	if r.InteractFPPop+r.InteractFPTail <= r.LoadFPPop+r.LoadFPTail {
		t.Fatalf("interaction crawl found no lift: load %d vs interact %d",
			r.LoadFPPop+r.LoadFPTail, r.InteractFPPop+r.InteractFPTail)
	}
	attributed := 0
	for _, v := range r.Vendors {
		if v.Name == "Forter" && v.Sites != 0 {
			t.Errorf("timer-deferred Forter attributed %d interaction-only sites", v.Sites)
		}
		attributed += v.Sites
	}
	if attributed == 0 {
		t.Error("no interaction-only site attributed to any gated vendor")
	}
	// Memoized: the second call must not re-crawl (same pointer data).
	again := s.InteractionGap()
	if len(again.InteractionOnly) != len(r.InteractionOnly) {
		t.Error("InteractionGap is not stable across calls")
	}
}
