package canvassing

import (
	"fmt"
	"strings"
	"time"

	"canvassing/internal/crawler"
	"canvassing/internal/obs"
	"canvassing/internal/report"
	"canvassing/internal/web"
)

// crawlerCacheHitRate reads the study-wide parse-cache hit rate; ok is
// false when nothing ever consulted the cache.
func crawlerCacheHitRate(s *Study) (rate float64, ok bool) {
	return crawler.CacheHitRate(s.tel.Metrics)
}

// RenderAll runs every experiment the study's crawls support and renders
// them as one text report. Experiments needing missing crawls (Table 2,
// CrossMachine) are skipped with a note.
func (s *Study) RenderAll() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Canvassing the Fingerprinters — reproduction report\n")
	fmt.Fprintf(&sb, "seed=%d scale=%.3f sites=%d\n", s.Options.Seed, s.Options.Scale, len(s.crawlSites))
	if s.Control != nil {
		st := s.Control.Stats().Total
		fmt.Fprintf(&sb, "control crawl: ok %d/%d, extractions %d, script-errors %d\n",
			st.OK, st.Visited, st.Extractions, st.ScriptErrors)
	}
	sb.WriteByte('\n')

	sb.WriteString(s.Prevalence().Render())
	sb.WriteByte('\n')
	sb.WriteString(s.Figure1(50).Render())
	sb.WriteByte('\n')
	sb.WriteString(s.Reach().Render())
	sb.WriteByte('\n')
	sb.WriteString(s.Table1().Render())
	sb.WriteByte('\n')
	if t2, err := s.Table2(); err == nil {
		sb.WriteString(t2.Render())
	} else {
		sb.WriteString("E5 — Table 2 skipped (run with WithAdblock)\n")
	}
	sb.WriteByte('\n')
	sb.WriteString(s.Table4().Render())
	sb.WriteByte('\n')
	sb.WriteString(s.Evasion().Render())
	sb.WriteByte('\n')
	sb.WriteString(s.Randomization(40).Render())
	sb.WriteByte('\n')
	if cm, err := s.CrossMachine(); err == nil {
		sb.WriteString(cm.Render())
	} else {
		sb.WriteString("E9 — Cross-machine validation skipped (run with WithM1)\n")
	}
	sb.WriteByte('\n')
	sb.WriteString(s.Filters().Render())
	sb.WriteByte('\n')
	sb.WriteString(s.Table3().Render())
	sb.WriteByte('\n')
	sb.WriteString(s.RuleContext().Render())
	if s.Options.Interact {
		sb.WriteByte('\n')
		sb.WriteString(s.InteractionGap().Render())
	}
	if s.Faults != nil {
		sb.WriteByte('\n')
		sb.WriteString(s.CrawlHealth().Render())
	}
	return sb.String()
}

// PhaseTimings renders the phase-timing table for the run: one row per
// pipeline phase (webgen, control crawl, detect, cluster, attrib,
// re-crawls), children indented, with each root phase's share of total
// instrumented wall time. Phases that did not run are simply absent.
func (s *Study) PhaseTimings() string {
	t := report.NewTable("Phase timings", "phase", "wall", "share")
	total := s.tel.Tracer.TotalWall()
	var walk func(ps []obs.Phase, depth int)
	walk = func(ps []obs.Phase, depth int) {
		for _, p := range ps {
			share := ""
			if depth == 0 && total > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(p.Total)/float64(total))
			}
			t.AddRow(strings.Repeat("  ", depth)+p.Name, p.Total.Round(time.Microsecond).String(), share)
			walk(p.Children, depth+1)
		}
	}
	walk(s.tel.Tracer.PhaseSummary(), 0)
	t.AddRow("total", total.Round(time.Microsecond).String(), "100.0%")
	return t.String()
}

// TelemetryReport renders the crawl summary, phase-timing table, and
// metrics snapshot — the -metrics output of cmd/repro.
func (s *Study) TelemetryReport() string {
	var sb strings.Builder
	if s.Control != nil {
		sb.WriteString("Control crawl\n")
		sb.WriteString(s.Control.Stats().String())
		sb.WriteString("\n\n")
	}
	sb.WriteString(s.PhaseTimings())
	sb.WriteByte('\n')
	// "n/a" (no lookups ever) is a different fact from "0.0%" (every
	// lookup missed — the DisableParseCache ablation).
	if rate, ok := crawlerCacheHitRate(s); ok {
		fmt.Fprintf(&sb, "parse-cache hit rate: %.1f%%\n\n", 100*rate)
	} else {
		sb.WriteString("parse-cache hit rate: n/a (no lookups)\n\n")
	}
	sb.WriteString(s.checkpointSection())
	sb.WriteString(s.analysisSection())
	if active := s.tel.Tracer.Active(); len(active) > 0 {
		fmt.Fprintf(&sb, "WARNING: %d span(s) never ended (leaked):\n", len(active))
		for _, sp := range active {
			fmt.Fprintf(&sb, "  %s (running %s)\n", sp.Name, sp.Duration.Round(time.Microsecond))
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("Metrics\n")
	sb.WriteString(s.tel.Metrics.RenderText())
	return sb.String()
}

// analysisSection renders the parallel-analysis breakdown for
// TelemetryReport: one row per executor invocation (condition, pages,
// classified canvases, shard count) plus the memo-cache totals. Empty
// when no analysis has run yet.
func (s *Study) analysisSection() string {
	runs := s.analyzer.Runs()
	if len(runs) == 0 {
		return ""
	}
	var sb strings.Builder
	t := report.NewTable(fmt.Sprintf("Analysis pipeline (%d workers)", s.analyzer.Workers()),
		"condition", "pages", "canvases", "shards")
	for _, r := range runs {
		t.AddRow(r.Crawl, fmt.Sprint(r.Pages), fmt.Sprint(r.Canvases), fmt.Sprint(r.Shards))
	}
	sb.WriteString(t.String())
	if c := s.analyzer.Cache(); c != nil {
		hits, misses := c.Hits(), c.Misses()
		if hits+misses > 0 {
			rate := float64(hits) / float64(hits+misses)
			fmt.Fprintf(&sb, "memo cache: %d hits / %d misses (%.1f%% hit rate, %d distinct verdicts)\n",
				hits, misses, 100*rate, c.Len())
		} else {
			fmt.Fprintf(&sb, "memo cache: no lookups (%d distinct verdicts)\n", c.Len())
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}

// checkpointSection renders the "Checkpoint & snapshots" block of
// TelemetryReport. Always present — a disabled subsystem says so
// explicitly rather than vanishing, so report diffs across
// configurations stay aligned.
func (s *Study) checkpointSection() string {
	var sb strings.Builder
	sb.WriteString("Checkpoint & snapshots\n")
	if s.ckpt != nil {
		fmt.Fprintf(&sb, "checkpointing: every %d pages, %d checkpoint(s) written\n",
			s.ckpt.Every(), s.ckpt.Writes())
	} else {
		sb.WriteString("checkpointing: disabled\n")
	}
	if s.Snapshots != nil {
		hits, misses := s.Snapshots.Counts()
		if hits+misses > 0 {
			fmt.Fprintf(&sb, "snapshot store: %d hits / %d misses (%.1f%% hit rate, %d distinct bodies)\n",
				hits, misses, 100*float64(hits)/float64(hits+misses), s.Snapshots.Len())
		} else {
			fmt.Fprintf(&sb, "snapshot store: no lookups (%d distinct bodies)\n", s.Snapshots.Len())
		}
	} else {
		sb.WriteString("snapshot store: disabled\n")
	}
	sb.WriteByte('\n')
	return sb.String()
}

// PaperComparison renders the paper-vs-measured ledger for every headline
// number. Percentages compare directly across scales; absolute counts are
// annotated with the study's scale.
func (s *Study) PaperComparison() string {
	prev := s.Prevalence()
	popRow, tailRow := prev.Rows[0], prev.Rows[1]
	reach := s.Reach()
	t1 := s.Table1()
	t4 := s.Table4()
	ev := s.Evasion()
	evPop, evTail := ev.Rows[0], ev.Rows[1]
	rand := s.Randomization(40)
	filters := s.Filters()

	var sb strings.Builder
	sb.WriteString("Paper vs measured (percentages are scale-free; counts scale with Options.Scale)\n\n")
	add := func(metric, paper, measured string) {
		sb.WriteString(report.PaperVsMeasured(metric, paper, measured))
		sb.WriteByte('\n')
	}
	add("popular-site prevalence (§4.1)", "12.7%", report.Pct(popRow.FPSites, popRow.CrawledOK))
	add("tail-site prevalence (§4.1)", "9.9%", report.Pct(tailRow.FPSites, tailRow.CrawledOK))
	add("mean fingerprintable canvases per fp site", "3.31", fmt.Sprintf("%.2f", popRow.MeanPerSite))
	add("median canvases per fp site", "2", fmt.Sprintf("%.0f", popRow.Median))
	add("max canvases on one site", "60", fmt.Sprintf("%.0f", popRow.Max))
	add("unique canvases, popular cohort (§4.2)", "504", fmt.Sprint(reach.UniquePopular))
	add("unique canvases, tail cohort (§4.2)", "288", fmt.Sprint(reach.UniqueTail))
	add("top-6 canvas coverage of popular fp sites", "70.1%", report.Pct(reach.Top6CoveredPop, reach.TotalFPPop))
	add("top-6 canvas coverage of tail fp sites", "47.1%", report.Pct(reach.Top6CoveredTail, reach.TotalFPTail))
	add("tail fp sites sharing canvases with popular", "91.4%", report.Pct(reach.Overlap.TailSharingWithTop, reach.Overlap.TailFPSites))
	add("largest tail-only canvas group", "15 sites", fmt.Sprintf("%d sites", reach.Overlap.LargestTailOnlyGroup))
	add("attributed share of popular fp sites (Table 1)", "73%", report.Pct(t1.AttributedPop, t1.FPPop))
	add("attributed share of tail fp sites (Table 1)", "71%", report.Pct(t1.AttributedTail, t1.FPTail))
	add("EasyList coverage of popular test canvases (T4)", "31%", report.Pct(t4.Counts["EasyList"][0], t4.Totals[0]))
	add("EasyPrivacy coverage of popular test canvases", "36%", report.Pct(t4.Counts["EasyPrivacy"][0], t4.Totals[0]))
	add("Disconnect coverage of popular test canvases", "21%", report.Pct(t4.Counts["Disconnect"][0], t4.Totals[0]))
	add("any-list coverage, popular / tail", "45% / 37%",
		report.Pct(t4.Counts["Any"][0], t4.Totals[0])+" / "+report.Pct(t4.Counts["Any"][1], t4.Totals[1]))
	add("all-three coverage, popular / tail", "16% / 15%",
		report.Pct(t4.Counts["All"][0], t4.Totals[0])+" / "+report.Pct(t4.Counts["All"][1], t4.Totals[1]))
	add("fp sites with ≥1 first-party canvas (§5.2)", "49% / 52%",
		report.Pct(evPop.FirstPartySites, evPop.FPSites)+" / "+report.Pct(evTail.FirstPartySites, evTail.FPSites))
	add("fp sites with ≥1 subdomain-served canvas", "9.5% / 2.1%",
		report.Pct(evPop.SubdomainSites, evPop.FPSites)+" / "+report.Pct(evTail.SubdomainSites, evTail.FPSites))
	add("fp sites with ≥1 CDN-served canvas", "2.1% / 1.9%",
		report.Pct(evPop.CDNSites, evPop.FPSites)+" / "+report.Pct(evTail.CDNSites, evTail.FPSites))
	add("fp sites doing the double-render check (§5.3)", "45%",
		report.Pct(rand.CheckingPop+rand.CheckingTail, rand.FPPop+rand.FPTail))
	add("fingerprintable share of extracted canvases (§3.2)", "83%",
		report.Pct(filters.PerCohort[web.Popular].Fingerprintable+filters.PerCohort[web.Tail].Fingerprintable,
			filters.PerCohort[web.Popular].TotalExtractions+filters.PerCohort[web.Tail].TotalExtractions))
	if s.ABP != nil && s.UBO != nil {
		t2, _ := s.Table2()
		c, a, u := t2.Rows[0], t2.Rows[1], t2.Rows[2]
		add("canvas drop under Adblock Plus (Table 2)", "~3.4%",
			report.Pct(c.CanvasesPop-a.CanvasesPop, c.CanvasesPop))
		add("canvas drop under uBlock Origin (Table 2)", "~4.3%",
			report.Pct(c.CanvasesPop-u.CanvasesPop, c.CanvasesPop))
	}
	if cm, err := s.CrossMachine(); err == nil {
		add("cross-machine grouping invariant (§3.1)", "yes", fmt.Sprint(cm.GroupingConsistent))
	}
	return sb.String()
}
