package canvassing

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"canvassing/internal/obs/ops"
	"canvassing/internal/obs/tracez"
)

// TestTracezBundleInvariance is the trace-analytics determinism oracle:
// a study with per-visit tracing ON — reservoir filling, /tracez being
// hammered over live HTTP mid-run, the exemplar sidecar written — must
// produce byte-identical deterministic bundle artifacts to a study with
// tracing OFF. The reservoir lives outside the metrics registry and the
// event sink, and the sidecar is not a bundle artifact; this test is
// what pins that discipline.
func TestTracezBundleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline twice")
	}
	opts := Options{Seed: 7, Scale: 0.02, Workers: 2, AnalysisWorkers: 4, WithAdblock: true, FaultRate: 0.35}

	// Reference: tracing off, no ops plane.
	ref := Run(opts)
	refDir := t.TempDir()
	if err := ref.WriteBundle(refDir); err != nil {
		t.Fatal(err)
	}

	// Observed: tracing on, /tracez scraped concurrently with the run.
	opts.TraceVisits = true
	s := New(opts)
	if s.Visits() == nil {
		t.Fatal("TraceVisits did not install a reservoir")
	}
	plane, err := ops.Serve("127.0.0.1:0", s.Telemetry(), false, 500*time.Millisecond, s.Visits())
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()

	stopScrape := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopScrape:
				return
			default:
			}
			res, err := http.Get(plane.URL() + "/tracez")
			if err == nil {
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}
		}
	}()

	s.RunControl()
	s.Analyze()
	s.RunAdblock()
	s.Telemetry().Status.MarkDone()
	close(stopScrape)
	wg.Wait()

	obsDir := t.TempDir()
	if err := s.WriteBundle(obsDir); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"manifest.json", "events.jsonl", "report.txt", "metrics.deterministic.json"} {
		want := readFile(t, refDir, name)
		got := readFile(t, obsDir, name)
		if !bytes.Equal(got, want) {
			t.Errorf("%s changed by visit tracing (%d vs %d bytes); first divergence at byte %d",
				name, len(got), len(want), firstDiff(got, want))
		}
	}

	// The sidecar rides along with the traced bundle only, and it holds
	// retained exemplars for every crawl condition.
	if _, err := os.Stat(filepath.Join(refDir, tracez.ExemplarsFile)); !os.IsNotExist(err) {
		t.Error("untraced run must not write the exemplar sidecar")
	}
	ex, err := tracez.ReadExemplars(filepath.Join(obsDir, tracez.ExemplarsFile))
	if err != nil {
		t.Fatalf("traced run sidecar: %v", err)
	}
	conds := map[string]bool{}
	for _, ce := range ex.Conditions {
		conds[ce.Condition] = true
		if ce.Offered == 0 || len(ce.Slow)+len(ce.Head) == 0 {
			t.Errorf("condition %q retained no exemplars: %+v", ce.Condition, ce)
		}
	}
	for _, want := range []string{"control", "abp", "ubo"} {
		if !conds[want] {
			t.Errorf("condition %q missing from sidecar (have %v)", want, conds)
		}
	}
	if ex.Report == nil || len(ex.Report.CriticalPath) == 0 {
		t.Error("sidecar trailer missing the phase critical-path report")
	}
}

// TestTracezSelectionWidthInvariance pins the reservoir's determinism
// contract at study level: the selection key — which visits were kept,
// their costs and outcomes — is byte-identical across worker widths,
// because selection keys on deterministic cost and visits are offered
// from the ordered committer in page order.
func TestTracezSelectionWidthInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline per seed and width")
	}
	for _, seed := range []uint64{1, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			run := func(workers int) []byte {
				s := Run(Options{
					Seed: seed, Scale: 0.02, Workers: workers, AnalysisWorkers: workers,
					WithAdblock: true, FaultRate: 0.35, TraceVisits: true,
				})
				key := s.Visits().SelectionKey()
				if len(key) == 0 {
					t.Fatal("empty selection key")
				}
				return key
			}
			serial := run(1)
			wide := run(8)
			if !bytes.Equal(serial, wide) {
				t.Errorf("exemplar selection depends on worker width:\n--- serial ---\n%s\n--- wide ---\n%s", serial, wide)
			}
		})
	}
}
