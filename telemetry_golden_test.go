package canvassing

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate golden files")

// Volatile fragments of the telemetry report: wall-clock durations,
// histogram summaries, percentages, and the table rules/padding whose
// widths follow the duration strings. Masking them leaves the stable
// skeleton — section order, metric names, counter values, crawl
// stats — which is exactly what the golden test should pin.
var (
	histSummaryRe = regexp.MustCompile(`mean=\S+ p50=\S+ p95=\S+ max=\S+`)
	durationRe    = regexp.MustCompile(`\b[0-9]+(\.[0-9]+)?(ns|µs|us|ms|s|m|h)\b`)
	percentRe     = regexp.MustCompile(`[0-9]+(\.[0-9]+)?%`)
	spaceRunRe    = regexp.MustCompile(`  +`)
	dashRunRe     = regexp.MustCompile(`--+`)
)

// normalizeVolatile masks timing-dependent substrings so the report
// compares stably across machines and runs.
func normalizeVolatile(s string) string {
	s = histSummaryRe.ReplaceAllString(s, "mean=X p50=X p95=X max=X")
	s = durationRe.ReplaceAllString(s, "DUR")
	s = percentRe.ReplaceAllString(s, "PCT")
	s = spaceRunRe.ReplaceAllString(s, "  ")
	s = dashRunRe.ReplaceAllString(s, "--")
	return s
}

// TestTelemetryReportGolden pins the shape of Study.TelemetryReport():
// the crawl summary lines, phase-timing table rows, parse-cache line,
// and the full metric name set with their deterministic counter values.
// The crawler's ordered-commit pipeline makes parse-cache hit/miss
// counts identical at any pool width (TestCrawlTelemetryWidthInvariant
// pins that); Workers stays 1 here only to keep the fixture's history
// stable. Run with -update after an intentional format change.
func TestTelemetryReportGolden(t *testing.T) {
	s := New(Options{Seed: 11, Scale: 0.02, Workers: 1})
	s.RunControl()
	s.Analyze()
	got := normalizeVolatile(s.TelemetryReport())

	goldenPath := filepath.Join("testdata", "telemetry_report.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("telemetry report drifted from golden file.\ndiff hint: got %d bytes, want %d bytes.\n--- got ---\n%s\nRe-run with -update if the change is intentional.",
			len(got), len(want), got)
	}

	// Sanity beyond the byte compare: the masked report still carries
	// the sections readers rely on. "Analysis pipeline" and the memo
	// cache line are the parallel-analysis additions: the table pins
	// per-condition page/canvas/shard counts and the cache counters,
	// all deterministic at any worker width.
	for _, substr := range []string{"Control crawl", "Phase timings", "parse-cache hit rate",
		"Analysis pipeline", "memo cache", "analysis.cache.hits", "analyze.control",
		"Metrics", "crawl.visits.ok"} {
		if !strings.Contains(got, substr) {
			t.Fatalf("report lost section %q", substr)
		}
	}
}
