// Package canvassing reproduces "Canvassing the Fingerprinters:
// Characterizing Canvas Fingerprinting Use Across the Web" (IMC 2025) as
// a self-contained simulation study.
//
// A Study bundles the full pipeline: synthetic-web generation, the
// instrumented control crawl, fingerprintability detection, canvas
// clustering, vendor attribution, blocklist analyses, ad-blocker
// re-crawls, and the cross-machine validation crawl. Each experiment of
// the paper (tables, figures, and headline statistics) is exposed as a
// method returning a typed result with a Render() string form.
//
// Minimal use:
//
//	study := canvassing.Run(canvassing.Options{Seed: 1, Scale: 0.05})
//	fmt.Println(study.Prevalence().Render())
package canvassing

import (
	"fmt"
	"os"
	"time"

	"canvassing/internal/analysis"
	"canvassing/internal/attrib"
	"canvassing/internal/blocklist"
	"canvassing/internal/checkpoint"
	"canvassing/internal/cluster"
	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/machine"
	"canvassing/internal/netsim"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/obs/tracez"
	"canvassing/internal/snapshot"
	"canvassing/internal/stats"
	"canvassing/internal/web"
)

// Options configures a study run.
type Options struct {
	// Seed drives every random choice; equal seeds reproduce the study
	// bit for bit.
	Seed uint64
	// Scale shrinks the web: 1.0 is the paper's 20k+20k crawl, 0.05 a
	// laptop-quick 1k+1k run. Values <=0 select 1.0.
	Scale float64
	// Workers is the crawler pool width (<=0 selects 8).
	Workers int
	// AnalysisWorkers is the post-crawl analysis pool width (<=0
	// selects Workers). Any width produces byte-identical bundles —
	// the determinism oracle in determinism_test.go enforces it.
	AnalysisWorkers int
	// WithAdblock adds the Adblock Plus and uBlock Origin re-crawls
	// (Table 2 / E5).
	WithAdblock bool
	// WithM1 adds the Apple-silicon validation crawl (§3.1 / E9).
	WithM1 bool
	// FaultRate enables deterministic fault injection on every cohort
	// crawl: the fraction of sites given a seeded fault plan (0
	// disables, reproducing the pre-resilience pipeline exactly). The
	// demo ground-truth crawl is exempt — harvesting vendor demo pages
	// is the researcher's controlled environment, not the open Web.
	FaultRate float64
	// Retries and VisitTimeout tune the crawler's resilience engine
	// under FaultRate (zero selects the crawler defaults).
	Retries      int
	VisitTimeout time.Duration
	// CheckpointDir enables periodic checkpointing: crawl/study progress
	// is written atomically to <dir>/checkpoint.json at every commit
	// boundary, and Resume(dir) continues an interrupted run from it.
	// Empty disables checkpointing.
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in committed pages
	// (<=0 selects 256).
	CheckpointEvery int
	// SnapshotReuse routes cohort-crawl page fetches through a shared
	// content-addressed snapshot store, so the ABP/uBO/M1 re-crawls
	// reuse bodies the control crawl already fetched instead of
	// re-generating them. The store's hit/miss counters live outside
	// the metrics registry, so enabling reuse leaves deterministic
	// bundle artifacts byte-identical.
	SnapshotReuse bool
	// TraceVisits captures per-visit span trees from every crawl and
	// per-shard batch spans from the analysis executor into a bounded
	// deterministic exemplar reservoir (internal/obs/tracez). The
	// reservoir lives outside the metrics registry and event sink, so
	// enabling it changes zero bundle bytes; WriteBundle adds a
	// trace_exemplars.jsonl sidecar next to the bundle, and the ops
	// plane serves the live view at /tracez.
	TraceVisits bool
	// Interact enables the interaction-triggered fingerprinting
	// workload ("Beyond the Crawl"): the generated web additionally
	// carries interaction-gated vendor deployments, and the EX3
	// crawl-vs-interaction experiment re-crawls it with the crawler's
	// interaction engine driving seeded per-site behaviour profiles.
	// The load-time cohort crawls themselves stay interaction-free, so
	// the paper-faithful numbers keep their meaning; with Interact off
	// the study is byte-identical to builds without the engine.
	Interact bool
}

// Crawl condition labels used in the evidence event log. Bundle diffs
// align events across runs by (condition, site), so the labels are part
// of the bundle contract.
const (
	CondControl  = "control"
	CondABP      = "abp"
	CondUBO      = "ubo"
	CondM1       = "m1"
	CondDemo     = "demo"
	CondInner    = "inner"
	CondInteract = "interact"
)

// Study holds all crawl and analysis artifacts.
type Study struct {
	Options Options
	// Web is the generated world.
	Web *web.Web
	// Lists are the synthetic EasyList/EasyPrivacy/Disconnect lists.
	Lists *blocklist.StandardLists
	// Control is the extension-free crawl over both cohorts.
	Control *crawler.Result
	// Sites are the analyzed (detection-classified) control pages.
	Sites []detect.SiteCanvases
	// Clustering groups identical canvases across sites.
	Clustering *cluster.Clustering
	// GroundTruth holds per-vendor canvas hashes from demo/customer
	// crawls.
	GroundTruth *attrib.GroundTruth
	// Attribution is the Table 1 attribution result.
	Attribution *attrib.Result
	// ABP and UBO are the ad-blocker re-crawls (nil unless WithAdblock).
	ABP, UBO *crawler.Result
	// ABPSites and UBOSites are the analyzed re-crawl pages (cached so
	// Table 2 and run bundles share one evented analysis).
	ABPSites, UBOSites []detect.SiteCanvases
	// M1 is the validation crawl (nil unless WithM1).
	M1 *crawler.Result
	// M1Sites are the analyzed validation pages (cached like ABPSites).
	M1Sites []detect.SiteCanvases
	// Faults is the study's fault model (nil unless Options.FaultRate
	// is positive); every cohort crawl shares it so conditions see the
	// same per-site fault plans and stay comparable.
	Faults *netsim.FaultModel
	// Snapshots is the content-addressed body store shared by every
	// cohort crawl (nil unless Options.SnapshotReuse).
	Snapshots *snapshot.Store
	// Halted reports that the checkpoint writer interrupted the run
	// (its StopAfter fired): later phases were skipped, and the
	// checkpoint on disk holds the committed progress for Resume.
	Halted bool

	crawlSites []*web.Site // cohort sites in crawl order
	tel        *obs.Telemetry
	analyzer   *analysis.Executor
	ckpt       *checkpoint.Writer
	visits     *tracez.Reservoir // exemplar reservoir (nil unless TraceVisits)
	randCache  map[int]RandomizationResult
	// interactCache memoizes the EX3 interaction re-crawl (randCache
	// pattern): the report and the repro CLI share one re-crawl.
	interactCache *InteractionGapResult
}

// Checkpointer exposes the study's checkpoint writer (nil unless
// Options.CheckpointDir is set) — tests and binaries use it to arm
// StopAfter interruption.
func (s *Study) Checkpointer() *checkpoint.Writer { return s.ckpt }

// Telemetry exposes the study's metrics registry and span tracer.
// Every crawl and analysis phase accumulates into it; inspect it with
// Telemetry().Metrics.RenderText(), the PhaseTimings table, or the
// obs HTTP mux.
func (s *Study) Telemetry() *obs.Telemetry { return s.tel }

// Visits exposes the study's exemplar reservoir (nil unless
// Options.TraceVisits) — the /tracez payload and the
// trace_exemplars.jsonl source.
func (s *Study) Visits() *tracez.Reservoir { return s.visits }

// New generates the web and lists without crawling. Use Run for the
// whole pipeline.
func New(opts Options) *Study {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	tel := obs.NewTelemetry()
	sp := tel.Tracer.Start("webgen")
	w := web.Generate(web.Config{Seed: opts.Seed, Scale: opts.Scale, TrancoMax: 1_000_000, Interact: opts.Interact})
	sp.End()
	s := &Study{
		Options: opts,
		Web:     w,
		Lists:   ListsForSeed(opts.Seed),
		tel:     tel,
	}
	if opts.FaultRate > 0 {
		s.Faults = netsim.NewFaultModel(opts.Seed, opts.FaultRate)
	}
	if opts.SnapshotReuse {
		s.Snapshots = snapshot.New()
	}
	if opts.CheckpointDir != "" {
		s.ckpt = checkpoint.NewWriter(opts.CheckpointDir, opts.CheckpointEvery)
		s.ckpt.Metrics = tel.Metrics
		s.ckpt.Events = tel.Events
		s.ckpt.Faults = s.Faults
		s.ckpt.Snapshots = s.Snapshots
		s.ckpt.Status = tel.Status
		if err := s.ckpt.SetOpts(opts); err != nil {
			panic(err) // Options is a plain struct; marshal cannot fail
		}
	}
	if opts.TraceVisits {
		s.visits = tracez.NewReservoir(opts.Seed, 0, 0)
	}
	aw := opts.AnalysisWorkers
	if aw <= 0 {
		aw = opts.Workers
	}
	// One executor for the whole study: the memo cache spans the
	// control analysis and every re-analysis, which is where the
	// cross-condition verdict reuse comes from.
	s.analyzer = analysis.NewExecutor(aw, analysis.NewCache(tel.Metrics), tel)
	s.analyzer.SetVisits(s.visits)
	s.crawlSites = append(s.crawlSites, w.CohortSites(web.Popular)...)
	s.crawlSites = append(s.crawlSites, w.CohortSites(web.Tail)...)
	tel.Status.MarkRunning()
	return s
}

// Run executes the full pipeline for opts. If a checkpoint writer with
// an armed StopAfter interrupts a crawl, the remaining phases are
// skipped (Study.Halted) and the checkpoint holds the progress.
func Run(opts Options) *Study {
	s := New(opts)
	s.RunControl()
	if s.Halted {
		return s
	}
	s.Analyze()
	if opts.WithAdblock {
		s.RunAdblock()
		if s.Halted {
			return s
		}
	}
	if opts.WithM1 {
		s.RunM1()
	}
	return s
}

// Pipeline phase names recorded in checkpoints. Resume walks them in
// this order, replaying finished phases and re-running the rest.
const (
	PhaseCrawlControl = "crawl.control"
	PhaseAnalyze      = "analyze"
	PhaseCrawlABP     = "crawl.abp"
	PhaseAnalyzeABP   = "analyze.abp"
	PhaseCrawlUBO     = "crawl.ubo"
	PhaseAnalyzeUBO   = "analyze.ubo"
	PhaseCrawlM1      = "crawl.m1"
	PhaseAnalyzeM1    = "analyze.m1"
)

// crawlConfig builds the shared crawler configuration. Every crawl a
// study launches (control, ground truth, re-crawls, defenses) feeds
// the same telemetry registry; condition labels the crawl's decisions
// in the evidence event log.
func (s *Study) crawlConfig(condition string) crawler.Config {
	cfg := crawler.DefaultConfig()
	cfg.Workers = s.Options.Workers
	cfg.Seed = s.Options.Seed
	cfg.Telemetry = s.tel
	cfg.Condition = condition
	// Every cohort crawl contends with the same fault plans; the demo
	// ground-truth harvest runs fault-free (see Options.FaultRate).
	if condition != CondDemo {
		cfg.Faults = s.Faults
		cfg.Retries = s.Options.Retries
		cfg.VisitTimeout = s.Options.VisitTimeout
		// Typed-nil guard: only assign the interface when a store exists.
		if s.Snapshots != nil {
			cfg.Snapshots = s.Snapshots
		}
	}
	// Every crawl — including the demo harvest — feeds the exemplar
	// reservoir; it lives outside the registry, so this is invisible
	// to bundles.
	cfg.Visits = s.visits
	return cfg
}

// attachCheckpoint arms one cohort crawl with the study's checkpoint
// hook. The demo ground-truth harvest is never checkpointed — it runs
// inside the analyze phase, whose checkpoints are phase-boundary only.
func (s *Study) attachCheckpoint(cfg *crawler.Config, rs *crawler.ResumeState) {
	cfg.Resume = rs
	if s.ckpt == nil {
		return
	}
	cfg.CommitEvery = s.ckpt.Every()
	ext := ""
	if cfg.Extension != nil {
		ext = cfg.Extension.Name()
	}
	cfg.OnCommit = s.ckpt.Hook(cfg.Profile.Name, ext)
}

// finishPhase checkpoints a completed pipeline phase.
func (s *Study) finishPhase(name string) {
	if s.ckpt == nil || s.Halted {
		return
	}
	if err := s.ckpt.FinishPhase(name); err != nil {
		fmt.Fprintln(os.Stderr, "canvassing:", err)
	}
}

// events returns the study's evidence event sink (nil-safe for
// analyses that run without telemetry).
func (s *Study) events() *event.Sink {
	if s.tel == nil {
		return nil
	}
	return s.tel.Events
}

// Analysis exposes the study's parallel analysis executor (pool
// width, memo-cache stats, per-condition run breakdown).
func (s *Study) Analysis() *analysis.Executor { return s.analyzer }

// analyzeAll routes one crawl's pages through the parallel analysis
// executor under the given condition label. The executor guarantees
// the evidence log and metrics are identical to a serial
// detect.AnalyzeAllEvents call.
func (s *Study) analyzeAll(pages []*crawler.PageResult, cond string) []detect.SiteCanvases {
	return s.analyzer.AnalyzeAll(pages, s.events(), cond)
}

// RunControl performs the control crawl over both cohorts.
func (s *Study) RunControl() { s.runControl(nil) }

func (s *Study) runControl(rs *crawler.ResumeState) {
	defer s.tel.Tracer.Start("crawl.control", "sites", fmt.Sprint(len(s.crawlSites))).End()
	cfg := s.crawlConfig(CondControl)
	s.attachCheckpoint(&cfg, rs)
	s.Control = crawler.Crawl(s.Web, s.crawlSites, cfg)
	if s.Control.Interrupted {
		s.Halted = true
		return
	}
	s.finishPhase(PhaseCrawlControl)
}

// Analyze runs detection, clustering, ground truth and attribution over
// the control crawl, recording every verdict to the evidence log.
// RunControl must have been called.
func (s *Study) Analyze() {
	evs := s.events()
	s.Sites = s.analyzeAll(s.Control.Pages, CondControl)
	sp := s.tel.Tracer.Start("cluster")
	s.Clustering = cluster.BuildEvents(s.Sites, evs)
	sp.End()
	sp = s.tel.Tracer.Start("attrib")
	gt := sp.StartChild("groundtruth")
	s.GroundTruth = attrib.BuildGroundTruthEvents(s.Web, s.Sites, s.crawlConfig(CondDemo), evs)
	gt.End()
	s.Attribution = attrib.AttributeEvents(s.Clustering, s.GroundTruth, s.Sites, evs)
	sp.End()
	s.finishPhase(PhaseAnalyze)
}

// RunAdblock performs the two ad-blocker re-crawls (Table 2) and
// analyzes their pages under the "abp"/"ubo" condition labels.
func (s *Study) RunAdblock() {
	sp := s.tel.Tracer.Start("crawl.adblock")
	defer sp.End()
	abp := sp.StartChild("abp")
	s.runABP(nil)
	if !s.Halted {
		s.analyzeABP()
	}
	abp.End()
	if s.Halted {
		return
	}
	ubo := sp.StartChild("ubo")
	s.runUBO(nil)
	if !s.Halted {
		s.analyzeUBO()
	}
	ubo.End()
}

func (s *Study) runABP(rs *crawler.ResumeState) {
	cfg := s.crawlConfig(CondABP)
	cfg.Extension = newABP(s.Lists)
	s.attachCheckpoint(&cfg, rs)
	s.ABP = crawler.Crawl(s.Web, s.crawlSites, cfg)
	if s.ABP.Interrupted {
		s.Halted = true
		return
	}
	s.finishPhase(PhaseCrawlABP)
}

func (s *Study) analyzeABP() {
	s.ABPSites = s.analyzeAll(s.ABP.Pages, CondABP)
	s.finishPhase(PhaseAnalyzeABP)
}

func (s *Study) runUBO(rs *crawler.ResumeState) {
	cfg := s.crawlConfig(CondUBO)
	cfg.Extension = newUBO(s.Lists)
	s.attachCheckpoint(&cfg, rs)
	s.UBO = crawler.Crawl(s.Web, s.crawlSites, cfg)
	if s.UBO.Interrupted {
		s.Halted = true
		return
	}
	s.finishPhase(PhaseCrawlUBO)
}

func (s *Study) analyzeUBO() {
	s.UBOSites = s.analyzeAll(s.UBO.Pages, CondUBO)
	s.finishPhase(PhaseAnalyzeUBO)
}

// RunM1 performs the Apple-silicon validation crawl (§3.1).
func (s *Study) RunM1() {
	defer s.tel.Tracer.Start("crawl.m1").End()
	s.runM1Crawl(nil)
	if s.Halted {
		return
	}
	s.analyzeM1()
}

func (s *Study) runM1Crawl(rs *crawler.ResumeState) {
	cfg := s.crawlConfig(CondM1)
	cfg.Profile = machine.AppleM1()
	s.attachCheckpoint(&cfg, rs)
	s.M1 = crawler.Crawl(s.Web, s.crawlSites, cfg)
	if s.M1.Interrupted {
		s.Halted = true
		return
	}
	s.finishPhase(PhaseCrawlM1)
}

func (s *Study) analyzeM1() {
	s.M1Sites = s.analyzeAll(s.M1.Pages, CondM1)
	s.finishPhase(PhaseAnalyzeM1)
}

// ListsForSeed reconstructs the exact blocklists a study with the
// given seed used — standard lists plus the longtail tracker coverage.
// The verdict service uses it to answer /v1/block queries for a loaded
// bundle with the same rules the original run matched against.
func ListsForSeed(seed uint64) *blocklist.StandardLists {
	return blocklist.NewStandardListsWithTrackers(seed, longtailTrackerCoverage())
}

// longtailTrackerCoverage decides which boutique fingerprinting hosts the
// crowdsourced lists know about. Coverage is nested the way real lists
// correlate: the notorious 15% sit in all three lists, a further slice in
// EasyPrivacy+Disconnect, and EasyPrivacy alone catches most of the rest.
func longtailTrackerCoverage() []blocklist.TrackerHost {
	var out []blocklist.TrackerHost
	for _, id := range web.LongtailActorIDs() {
		host := web.ActorHost(id)
		r := stats.HashString("coverage:"+host) % 100
		t := blocklist.TrackerHost{Host: host}
		switch {
		case r < 10:
			t.EL, t.EP, t.Disc = true, true, true
		case r < 35:
			t.EP, t.Disc = true, true
		case r < 50:
			t.EP = true
		default:
			// ~15% of boutique trackers fly under every list's radar.
			continue
		}
		out = append(out, t)
	}
	return out
}

// cohortSites filters the analyzed sites of one cohort.
func (s *Study) cohortSites(c web.Cohort) []detect.SiteCanvases {
	var out []detect.SiteCanvases
	for i := range s.Sites {
		if s.Sites[i].Cohort == c {
			out = append(out, s.Sites[i])
		}
	}
	return out
}
