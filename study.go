// Package canvassing reproduces "Canvassing the Fingerprinters:
// Characterizing Canvas Fingerprinting Use Across the Web" (IMC 2025) as
// a self-contained simulation study.
//
// A Study bundles the full pipeline: synthetic-web generation, the
// instrumented control crawl, fingerprintability detection, canvas
// clustering, vendor attribution, blocklist analyses, ad-blocker
// re-crawls, and the cross-machine validation crawl. Each experiment of
// the paper (tables, figures, and headline statistics) is exposed as a
// method returning a typed result with a Render() string form.
//
// Minimal use:
//
//	study := canvassing.Run(canvassing.Options{Seed: 1, Scale: 0.05})
//	fmt.Println(study.Prevalence().Render())
package canvassing

import (
	"canvassing/internal/attrib"
	"canvassing/internal/blocklist"
	"canvassing/internal/cluster"
	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/machine"
	"canvassing/internal/stats"
	"canvassing/internal/web"
)

// Options configures a study run.
type Options struct {
	// Seed drives every random choice; equal seeds reproduce the study
	// bit for bit.
	Seed uint64
	// Scale shrinks the web: 1.0 is the paper's 20k+20k crawl, 0.05 a
	// laptop-quick 1k+1k run. Values <=0 select 1.0.
	Scale float64
	// Workers is the crawler pool width (<=0 selects 8).
	Workers int
	// WithAdblock adds the Adblock Plus and uBlock Origin re-crawls
	// (Table 2 / E5).
	WithAdblock bool
	// WithM1 adds the Apple-silicon validation crawl (§3.1 / E9).
	WithM1 bool
}

// Study holds all crawl and analysis artifacts.
type Study struct {
	Options Options
	// Web is the generated world.
	Web *web.Web
	// Lists are the synthetic EasyList/EasyPrivacy/Disconnect lists.
	Lists *blocklist.StandardLists
	// Control is the extension-free crawl over both cohorts.
	Control *crawler.Result
	// Sites are the analyzed (detection-classified) control pages.
	Sites []detect.SiteCanvases
	// Clustering groups identical canvases across sites.
	Clustering *cluster.Clustering
	// GroundTruth holds per-vendor canvas hashes from demo/customer
	// crawls.
	GroundTruth *attrib.GroundTruth
	// Attribution is the Table 1 attribution result.
	Attribution *attrib.Result
	// ABP and UBO are the ad-blocker re-crawls (nil unless WithAdblock).
	ABP, UBO *crawler.Result
	// M1 is the validation crawl (nil unless WithM1).
	M1 *crawler.Result

	crawlSites []*web.Site // cohort sites in crawl order
}

// New generates the web and lists without crawling. Use Run for the
// whole pipeline.
func New(opts Options) *Study {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	w := web.Generate(web.Config{Seed: opts.Seed, Scale: opts.Scale, TrancoMax: 1_000_000})
	s := &Study{
		Options: opts,
		Web:     w,
		Lists:   blocklist.NewStandardListsWithTrackers(opts.Seed, longtailTrackerCoverage()),
	}
	s.crawlSites = append(s.crawlSites, w.CohortSites(web.Popular)...)
	s.crawlSites = append(s.crawlSites, w.CohortSites(web.Tail)...)
	return s
}

// Run executes the full pipeline for opts.
func Run(opts Options) *Study {
	s := New(opts)
	s.RunControl()
	s.Analyze()
	if opts.WithAdblock {
		s.RunAdblock()
	}
	if opts.WithM1 {
		s.RunM1()
	}
	return s
}

// crawlConfig builds the shared crawler configuration.
func (s *Study) crawlConfig() crawler.Config {
	cfg := crawler.DefaultConfig()
	cfg.Workers = s.Options.Workers
	cfg.Seed = s.Options.Seed
	return cfg
}

// RunControl performs the control crawl over both cohorts.
func (s *Study) RunControl() {
	s.Control = crawler.Crawl(s.Web, s.crawlSites, s.crawlConfig())
}

// Analyze runs detection, clustering, ground truth and attribution over
// the control crawl. RunControl must have been called.
func (s *Study) Analyze() {
	s.Sites = detect.AnalyzeAll(s.Control.Pages)
	s.Clustering = cluster.Build(s.Sites)
	s.GroundTruth = attrib.BuildGroundTruth(s.Web, s.Sites, s.crawlConfig())
	s.Attribution = attrib.Attribute(s.Clustering, s.GroundTruth, s.Sites)
}

// RunAdblock performs the two ad-blocker re-crawls (Table 2).
func (s *Study) RunAdblock() {
	abpCfg := s.crawlConfig()
	abpCfg.Extension = newABP(s.Lists)
	s.ABP = crawler.Crawl(s.Web, s.crawlSites, abpCfg)
	uboCfg := s.crawlConfig()
	uboCfg.Extension = newUBO(s.Lists)
	s.UBO = crawler.Crawl(s.Web, s.crawlSites, uboCfg)
}

// RunM1 performs the Apple-silicon validation crawl (§3.1).
func (s *Study) RunM1() {
	cfg := s.crawlConfig()
	cfg.Profile = machine.AppleM1()
	s.M1 = crawler.Crawl(s.Web, s.crawlSites, cfg)
}

// longtailTrackerCoverage decides which boutique fingerprinting hosts the
// crowdsourced lists know about. Coverage is nested the way real lists
// correlate: the notorious 15% sit in all three lists, a further slice in
// EasyPrivacy+Disconnect, and EasyPrivacy alone catches most of the rest.
func longtailTrackerCoverage() []blocklist.TrackerHost {
	var out []blocklist.TrackerHost
	for _, id := range web.LongtailActorIDs() {
		host := web.ActorHost(id)
		r := stats.HashString("coverage:"+host) % 100
		t := blocklist.TrackerHost{Host: host}
		switch {
		case r < 10:
			t.EL, t.EP, t.Disc = true, true, true
		case r < 35:
			t.EP, t.Disc = true, true
		case r < 50:
			t.EP = true
		default:
			// ~15% of boutique trackers fly under every list's radar.
			continue
		}
		out = append(out, t)
	}
	return out
}

// cohortSites filters the analyzed sites of one cohort.
func (s *Study) cohortSites(c web.Cohort) []detect.SiteCanvases {
	var out []detect.SiteCanvases
	for i := range s.Sites {
		if s.Sites[i].Cohort == c {
			out = append(out, s.Sites[i])
		}
	}
	return out
}
