// Vendorhunt demonstrates the paper's core trick — "fingerprinting the
// fingerprinters": crawl a vendor's public demo page, record its test
// canvases, and then find every crawled site that renders byte-identical
// canvases. The canvas itself is the vendor's signature.
//
//	go run ./examples/vendorhunt -vendor fingerprintjs
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"canvassing"
	"canvassing/internal/web"
)

func main() {
	vendor := flag.String("vendor", "fingerprintjs", "vendor slug to hunt (see Table 1)")
	scale := flag.Float64("scale", 0.05, "web scale")
	flag.Parse()

	study := canvassing.Run(canvassing.Options{Seed: 7, Scale: *scale})

	hashes := study.GroundTruth.Hashes[*vendor]
	if len(hashes) == 0 {
		log.Fatalf("no ground-truth canvases for %q — it may have no demo/customer at this scale", *vendor)
	}
	fmt.Printf("vendor %s has %d distinct test canvases (from its demo/customer crawl)\n\n",
		*vendor, len(hashes))

	// Walk the clustering: every group whose hash is in the vendor's set
	// is that vendor's footprint, regardless of what URL served it.
	type hit struct {
		domain string
		cohort web.Cohort
		script string
	}
	var hits []hit
	seen := map[string]bool{}
	for _, g := range study.Clustering.Groups {
		if !hashes[g.Hash] {
			continue
		}
		for _, cohort := range []web.Cohort{web.Popular, web.Tail} {
			for _, domain := range g.Sites[cohort] {
				if seen[domain] {
					continue
				}
				seen[domain] = true
				script := "(unknown)"
				if len(g.ScriptURLs) > 0 {
					script = g.ScriptURLs[0]
				}
				hits = append(hits, hit{domain: domain, cohort: cohort, script: script})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].domain < hits[j].domain })

	fmt.Printf("%d sites render %s's canvases:\n", len(hits), *vendor)
	for i, h := range hits {
		if i >= 25 {
			fmt.Printf("  ... and %d more\n", len(hits)-25)
			break
		}
		fmt.Printf("  %-28s (%s cohort)\n", h.domain, h.cohort)
	}

	// The point of the technique: serving evasions don't matter. Count
	// how many of these deployments a URL-based approach would miss.
	firstParty := 0
	for _, g := range study.Clustering.Groups {
		if !hashes[g.Hash] {
			continue
		}
		for _, u := range g.ScriptURLs {
			if !containsVendorHost(u, *vendor) {
				firstParty++
			}
		}
	}
	fmt.Printf("\nscript URLs serving these canvases that do NOT mention the vendor: %d\n", firstParty)
	fmt.Println("(bundled, subdomain-routed, CNAME-cloaked or CDN-served — invisible to URL matching)")
}

func containsVendorHost(url, slug string) bool {
	// Minimal check for the demo's purposes.
	return len(url) > 0 && (contains(url, slug) || contains(url, "fpnpmcdn"))
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
