// Adblockgap reproduces §5.2's finding: although nearly half of
// fingerprinting scripts are on crowdsourced blocklists, installing an ad
// blocker barely reduces the canvases a crawl observes — first-party
// serving, CDN fronting, CNAME cloaking and mis-scoped rules bridge the
// gap. The example prints coverage (Table 4), the re-crawl deltas
// (Table 2), the serving-mode breakdown, and the mgid rule case study.
//
//	go run ./examples/adblockgap
package main

import (
	"fmt"
	"log"

	"canvassing"
)

func main() {
	study := canvassing.Run(canvassing.Options{
		Seed:        11,
		Scale:       0.05,
		WithAdblock: true,
	})

	fmt.Println(study.Table4().Render())

	t2, err := study.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2.Render())

	control, abp := t2.Rows[0], t2.Rows[1]
	covered := study.Table4()
	fmt.Printf("the gap: %s of popular test canvases are on some list, but Adblock Plus removes only %s\n\n",
		pct(covered.Counts["Any"][0], covered.Totals[0]),
		pct(control.CanvasesPop-abp.CanvasesPop, control.CanvasesPop))

	fmt.Println(study.Evasion().Render())
	fmt.Println(study.RuleContext().Render())
}

func pct(n, d int) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(d))
}
