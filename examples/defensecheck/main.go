// Defensecheck demonstrates §5.3 / Algorithm 1 at the canvas level: it
// runs a real FingerprintJS-style script inside the embedded JS VM
// against three browser configurations — no defense, per-render
// randomization, and per-session (Firefox-style) randomization — and
// shows which configuration the fingerprinter's double-render check can
// detect.
//
//	go run ./examples/defensecheck
package main

import (
	"fmt"
	"log"

	"canvassing/internal/dom"
	"canvassing/internal/jsvm"
	"canvassing/internal/machine"
	"canvassing/internal/randomize"
	"canvassing/internal/services"
)

func main() {
	script := services.BySlug("fingerprintjs").Source(services.ScriptParams{SiteDomain: "demo.local"})

	type result struct {
		name     string
		hook     func() *randomize.Defense
		detected bool
		visitor  float64
	}
	configs := []result{
		{name: "no defense", hook: nil},
		{name: "per-render noise (extension-style)", hook: func() *randomize.Defense {
			return randomize.NewDefense(randomize.PerRender, 99)
		}},
		{name: "per-session noise (Firefox-style)", hook: func() *randomize.Defense {
			return randomize.NewDefense(randomize.PerSession, 99)
		}},
	}

	for i := range configs {
		c := &configs[i]
		in := jsvm.New(jsvm.Options{RandSeed: 1})
		doc := dom.NewDocument(machine.Intel(), "demo.local")
		if c.hook != nil {
			doc.ExtractHook = c.hook().Hook()
		}
		doc.Install(in)
		if _, err := in.RunSource(script); err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		// The script stores 0 into its text-canvas signal when its own
		// Algorithm-1 check finds inconsistent renders.
		v, err := in.RunSource("window.__fpjs_visitor")
		if err != nil {
			log.Fatal(err)
		}
		c.visitor = v.Num()
		sig, err := in.RunSource("__fpjsTextSignal")
		if err != nil {
			log.Fatal(err)
		}
		c.detected = sig.Num() == 0
	}

	fmt.Println("FingerprintJS-style script vs canvas randomization (Algorithm 1):")
	for _, c := range configs {
		verdict := "canvas accepted into the fingerprint"
		if c.detected {
			verdict = "randomization DETECTED — canvas component discarded"
		}
		fmt.Printf("  %-38s visitor-id=%.0f  %s\n", c.name, c.visitor, verdict)
	}
	fmt.Println("\nper-session noise still poisons the fingerprint, but the script cannot tell")
	fmt.Println("(footnote 7: the check only works when each rendering gets fresh noise).")
}
