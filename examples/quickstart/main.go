// Quickstart: run a small end-to-end study and print the headline
// results — prevalence, the top canvas groups, and vendor attribution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"canvassing"
)

func main() {
	// Scale 0.05 generates a 1k popular + 1k tail web: the whole
	// pipeline (generate → crawl → detect → cluster → attribute) runs
	// in a few seconds.
	study := canvassing.Run(canvassing.Options{
		Seed:  42,
		Scale: 0.05,
	})

	fmt.Println(study.Prevalence().Render())
	fmt.Println(study.Reach().Render())
	fmt.Println(study.Table1().Render())

	// Every result is also available as structured data:
	t1 := study.Table1()
	for _, row := range t1.Rows {
		if row.Popular > 0 && row.Security {
			fmt.Printf("security vendor %s fingerprints on %d popular sites\n",
				row.Vendor, row.Popular)
		}
	}
}
