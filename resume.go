package canvassing

import (
	"encoding/json"
	"fmt"

	"canvassing/internal/attrib"
	"canvassing/internal/checkpoint"
	"canvassing/internal/cluster"
	"canvassing/internal/crawler"
	"canvassing/internal/netsim"
)

// Resume continues a checkpointed study from dir. The study's options
// come from the checkpoint itself; the web regenerates from the seed;
// metrics, evidence events, fault plans, and the snapshot store are
// restored to the checkpoint cut; completed crawls are replayed
// verbatim from their committed pages; a partially committed crawl
// continues its worker pool from the frontier; and completed analysis
// phases are re-derived silently (no counters, no events — those are
// already in the restored state). The result: bundle artifacts from a
// resumed run are byte-identical to an uninterrupted run's, at any
// worker width — the resume oracle in resume_test.go enforces it.
func Resume(dir string) (*Study, error) {
	cp, err := checkpoint.Load(dir)
	if err != nil {
		return nil, err
	}
	var opts Options
	if len(cp.Opts) == 0 {
		return nil, fmt.Errorf("canvassing: checkpoint in %s records no options", dir)
	}
	if err := json.Unmarshal(cp.Opts, &opts); err != nil {
		return nil, fmt.Errorf("canvassing: checkpoint options: %w", err)
	}
	opts.CheckpointDir = dir // follow the sidecar even if the dir moved
	s := New(opts)

	// Restore the cut: registry, event log (with its seq high-water
	// mark), fault cursor, snapshot store.
	s.tel.Metrics.Restore(cp.Metrics)
	s.tel.Events.Restore(cp.Events, cp.EventsSeq, cp.EventsDropped)
	if cp.Faults != nil {
		s.Faults = netsim.RestoreFaultModel(*cp.Faults)
	}
	if cp.HasSnapshots {
		snaps, err := checkpoint.LoadSnapshots(dir)
		if err != nil {
			return nil, err
		}
		s.Snapshots = snaps
	}
	s.ckpt.Adopt(cp)
	s.ckpt.Faults = s.Faults
	s.ckpt.Snapshots = s.Snapshots

	// Walk the pipeline in Run order: replay finished work, continue
	// the rest. A fresh interruption (an armed StopAfter on the new
	// writer) halts the walk exactly as it halts Run.
	if done, rs := crawlCursor(cp, CondControl); done {
		s.Control = restoreResult(cp.Crawl(CondControl))
	} else {
		s.runControl(rs)
		if s.Halted {
			return s, nil
		}
	}
	if cp.PhaseDone(PhaseAnalyze) {
		s.replayAnalyze()
	} else {
		s.Analyze()
	}
	if opts.WithAdblock {
		if done, rs := crawlCursor(cp, CondABP); done {
			s.ABP = restoreResult(cp.Crawl(CondABP))
		} else {
			s.runABP(rs)
			if s.Halted {
				return s, nil
			}
		}
		if cp.PhaseDone(PhaseAnalyzeABP) {
			s.ABPSites = s.analyzer.Replay(s.ABP.Pages, CondABP)
		} else {
			s.analyzeABP()
		}
		if done, rs := crawlCursor(cp, CondUBO); done {
			s.UBO = restoreResult(cp.Crawl(CondUBO))
		} else {
			s.runUBO(rs)
			if s.Halted {
				return s, nil
			}
		}
		if cp.PhaseDone(PhaseAnalyzeUBO) {
			s.UBOSites = s.analyzer.Replay(s.UBO.Pages, CondUBO)
		} else {
			s.analyzeUBO()
		}
	}
	if opts.WithM1 {
		if done, rs := crawlCursor(cp, CondM1); done {
			s.M1 = restoreResult(cp.Crawl(CondM1))
		} else {
			s.runM1Crawl(rs)
			if s.Halted {
				return s, nil
			}
		}
		if cp.PhaseDone(PhaseAnalyzeM1) {
			s.M1Sites = s.analyzer.Replay(s.M1.Pages, CondM1)
		} else {
			s.analyzeM1()
		}
	}
	return s, nil
}

// crawlCursor reads one condition's continuation state out of a
// checkpoint: (true, nil) for a completed crawl, (false, rs) for a
// partial one, (false, nil) for one that never started.
func crawlCursor(cp *checkpoint.Checkpoint, cond string) (done bool, rs *crawler.ResumeState) {
	cs := cp.Crawl(cond)
	if cs == nil {
		return false, nil
	}
	if cs.Done {
		return true, nil
	}
	return false, &crawler.ResumeState{Pages: cs.Pages, ParseSeen: cs.ParseSeen}
}

// restoreResult rebuilds a completed crawl's Result from its
// checkpointed state.
func restoreResult(cs *checkpoint.CrawlState) *crawler.Result {
	return &crawler.Result{
		Pages:     cs.Pages,
		Machine:   cs.Machine,
		Extension: cs.Extension,
		Frontier:  cs.Frontier,
	}
}

// replayAnalyze re-derives the control-crawl analysis artifacts
// without touching telemetry: the analysis ran to completion before
// the checkpoint, so its events and counters are already in the
// restored state. The memo cache is warmed (counter-free) so later,
// counted analyses see the cache an uninterrupted run would have.
func (s *Study) replayAnalyze() {
	s.Sites = s.analyzer.Replay(s.Control.Pages, CondControl)
	s.Clustering = cluster.BuildEvents(s.Sites, nil)
	cfg := s.crawlConfig(CondDemo)
	cfg.Telemetry = nil // silent demo harvest
	s.GroundTruth = attrib.BuildGroundTruthEvents(s.Web, s.Sites, cfg, nil)
	s.Attribution = attrib.AttributeEvents(s.Clustering, s.GroundTruth, s.Sites, nil)
}
