package canvassing

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"canvassing/internal/distrib"
)

// The partition-invariance oracle: a study whose crawl phase is split
// across work-units — any partition count, any crawler pool width, any
// dispatch interleaving across worker slots — must produce a run
// bundle byte-identical to the single-process pipeline. For each case
// the serial Run() writes a reference bundle per crawler width (the
// crawl.workers gauge makes width part of the reference), and the
// distributed run at partition counts {1, 4, 16} must reproduce
// manifest.json, events.jsonl, and report.txt byte for byte plus
// metrics.json in its deterministic projection. One seed runs under
// heavy fault injection so the oracle covers degraded pages, retries,
// and visit.outcome events crossing unit boundaries.

// distribCase is one oracle configuration. The clean seed also turns
// on snapshot reuse and the M1 crawl so the store-delta merge and all
// four conditions are exercised; the faulted seed keeps the fault
// model as its axis.
type distribCase struct {
	seed      uint64
	fault     float64
	snapshots bool
	m1        bool
}

var distribCases = []distribCase{
	{seed: 1, fault: 0, snapshots: true, m1: true},
	{seed: 7, fault: 0.5, snapshots: false, m1: false},
}

func (c distribCase) options(workers int) Options {
	return Options{
		Seed:          c.seed,
		Scale:         0.02,
		Workers:       workers,
		WithAdblock:   true,
		WithM1:        c.m1,
		FaultRate:     c.fault,
		SnapshotReuse: c.snapshots,
		// Exemplar capture must stay invisible in bundle bytes on the
		// distributed path too.
		TraceVisits: true,
	}
}

// serialBundle is the reference side: the ordinary single-process Run.
func serialBundle(t *testing.T, opts Options) (string, *Study) {
	t.Helper()
	s := Run(opts)
	dir := filepath.Join(t.TempDir(), "bundle")
	if err := s.WriteBundle(dir); err != nil {
		t.Fatal(err)
	}
	return dir, s
}

// distribBundle runs the distributed pipeline and writes its bundle.
func distribBundle(t *testing.T, opts Options, d DistribOptions) (string, *Study, *distrib.Ledger) {
	t.Helper()
	if d.Dir == "" {
		d.Dir = t.TempDir()
	}
	s, ledger, err := RunDistributed(opts, d)
	if err != nil {
		t.Fatalf("distributed run: %v\nledger:\n%s", err, renderIfAny(ledger))
	}
	dir := filepath.Join(t.TempDir(), "bundle")
	if err := s.WriteBundle(dir); err != nil {
		t.Fatal(err)
	}
	return dir, s, ledger
}

func renderIfAny(l *distrib.Ledger) string {
	if l == nil {
		return "(no ledger)"
	}
	return distrib.RenderLedger(l.Records())
}

// compareBundles requires the two bundles' deterministic artifacts to
// be byte-identical.
func compareBundles(t *testing.T, label, refDir, gotDir string) {
	t.Helper()
	for _, name := range []string{"manifest.json", "events.jsonl", "report.txt"} {
		ref, got := readFile(t, refDir, name), readFile(t, gotDir, name)
		if !bytes.Equal(got, ref) {
			t.Errorf("%s: %s differs from serial (%d vs %d bytes); first divergence at byte %d",
				label, name, len(got), len(ref), firstDiff(got, ref))
		}
	}
	ref, got := deterministicMetrics(t, refDir), deterministicMetrics(t, gotDir)
	if !bytes.Equal(got, ref) {
		t.Errorf("%s: deterministic metrics differ from serial\n got: %s\nwant: %s", label, got, ref)
	}
}

func TestDistribPartitionOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline many times")
	}
	for _, c := range distribCases {
		for _, width := range []int{1, 8} {
			opts := c.options(width)
			refDir, refStudy := serialBundle(t, opts)
			if len(readFile(t, refDir, "events.jsonl")) == 0 {
				t.Fatalf("seed %d: serial reference recorded no events", c.seed)
			}
			if c.fault > 0 {
				// The faulted seed must actually exercise degradation, or
				// the resilience half of this oracle is vacuous.
				if st := refStudy.Control.Stats().Total; st.Degraded == 0 || st.Failed == 0 {
					t.Fatalf("seed %d rate %.2f: no degraded/failed pages (degraded=%d failed=%d)",
						c.seed, c.fault, st.Degraded, st.Failed)
				}
			}
			// Width 8 sweeps every partition count; width 1 pins one
			// partitioned point so the single-worker crawl is covered
			// without doubling the sweep.
			partitions := []int{1, 4, 16}
			if width == 1 {
				partitions = []int{4}
			}
			for _, parts := range partitions {
				label := fmt.Sprintf("seed %d width %d partitions %d", c.seed, width, parts)
				gotDir, _, ledger := distribBundle(t, opts, DistribOptions{Partitions: parts, Slots: 3})
				compareBundles(t, label, refDir, gotDir)
				for _, r := range ledger.Records() {
					if r.Status != distrib.UnitDone || r.Attempts != 1 || r.Resumed {
						t.Errorf("%s: unit %s ended %s after %d attempt(s) (resumed=%v); a clean run retries nothing",
							label, r.ID, r.Status, r.Attempts, r.Resumed)
					}
				}
			}
		}
	}
}

// The chaos half of the oracle: kill one worker per condition at
// roughly 25%, 50%, and 75% of its unit (the checkpoint writer's
// StopAfter lever — the same exit-3 convention the process transport
// maps), let the coordinator reassign each orphaned unit to the next
// free slot where it resumes from its checkpoint sidecar, and require
// the merged bundle to STILL be byte-identical to the serial run.
func TestDistribKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline three times")
	}
	c := distribCase{seed: 7, fault: 0.5}
	opts := c.options(8)
	// Units are 200 pages (800 sites / 4 partitions); a 25-page cadence
	// gives 8 checkpoint writes per unit, so StopAfter 2/4/6 kills the
	// armed attempt at 25%/50%/75% of its unit.
	opts.CheckpointEvery = 25
	refDir, _ := serialBundle(t, opts)

	arm := map[string]int{
		"control-01": 2,
		"abp-02":     4,
		"ubo-03":     6,
	}
	gotDir, _, ledger := distribBundle(t, opts, DistribOptions{Partitions: 4, Slots: 3, Arm: arm})
	compareBundles(t, "kill-and-resume", refDir, gotDir)
	for _, r := range ledger.Records() {
		if _, armed := arm[r.ID]; armed {
			if r.Status != distrib.UnitDone || r.Attempts != 2 || !r.Resumed || len(r.Failures) != 1 {
				t.Errorf("armed unit %s: status=%s attempts=%d resumed=%v failures=%v; want done after one kill and one resume",
					r.ID, r.Status, r.Attempts, r.Resumed, r.Failures)
			}
		} else if r.Status != distrib.UnitDone || r.Attempts != 1 {
			t.Errorf("unit %s: status=%s attempts=%d; unarmed units finish first try", r.ID, r.Status, r.Attempts)
		}
	}
}

// A unit whose attempts keep dying must exhaust its budget and abort
// the run with the ledger telling the story — never a silent
// half-merged study.
func TestDistribAttemptBudgetAborts(t *testing.T) {
	opts := Options{Seed: 3, Scale: 0.02, Workers: 2}
	_, ledger, err := RunDistributed(opts, DistribOptions{
		Dir:        t.TempDir(),
		Partitions: 2,
		Slots:      2,
		// The arm kills the unit's only permitted attempt, so the budget
		// is exhausted immediately.
		MaxAttempts: 1,
		Arm:         map[string]int{"control-00": 1},
	})
	if err == nil {
		t.Fatal("an exhausted unit must abort the distributed run")
	}
	var failed int
	for _, r := range ledger.Records() {
		if r.ID == "control-00" {
			if r.Status != distrib.UnitFailed {
				t.Errorf("exhausted unit recorded as %s, want %s", r.Status, distrib.UnitFailed)
			}
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("ledger lost the failed unit: %v", ledger.Records())
	}
}
