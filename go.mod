module canvassing

go 1.22
