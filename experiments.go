package canvassing

import (
	"fmt"
	"sort"
	"strings"

	"canvassing/internal/adblock"
	"canvassing/internal/blocklist"
	"canvassing/internal/cluster"
	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/netsim"
	"canvassing/internal/randomize"
	"canvassing/internal/report"
	"canvassing/internal/services"
	"canvassing/internal/stats"
	"canvassing/internal/web"
)

func newABP(l *blocklist.StandardLists) crawler.Extension { return adblock.NewAdblockPlus(l) }
func newUBO(l *blocklist.StandardLists) crawler.Extension { return adblock.NewUBlockOrigin(l) }

// --- E1: prevalence (§4.1) ------------------------------------------------

// PrevalenceRow summarizes one cohort.
type PrevalenceRow struct {
	Cohort      web.Cohort
	CrawledOK   int
	FPSites     int
	MeanPerSite float64
	Median      float64
	Max         float64
}

// PrevalenceResult is experiment E1.
type PrevalenceResult struct {
	Rows []PrevalenceRow
}

// Prevalence computes E1 from the control crawl.
func (s *Study) Prevalence() PrevalenceResult {
	var res PrevalenceResult
	for _, cohort := range []web.Cohort{web.Popular, web.Tail} {
		sites := s.cohortSites(cohort)
		st := detect.ComputeStats(sites)
		counts := cluster.PerSiteCounts(sites, cohort)
		sum := stats.Summarize(counts)
		res.Rows = append(res.Rows, PrevalenceRow{
			Cohort:      cohort,
			CrawledOK:   st.SitesCrawledOK,
			FPSites:     st.SitesFingerprinting,
			MeanPerSite: sum.Mean,
			Median:      sum.Median,
			Max:         sum.Max,
		})
	}
	return res
}

// Render formats E1.
func (r PrevalenceResult) Render() string {
	t := report.NewTable("E1 — Canvas fingerprinting prevalence (§4.1)",
		"cohort", "crawled-ok", "fp-sites", "prevalence", "mean/site", "median", "max")
	for _, row := range r.Rows {
		t.AddRow(row.Cohort, row.CrawledOK, row.FPSites,
			report.Pct(row.FPSites, row.CrawledOK),
			fmt.Sprintf("%.2f", row.MeanPerSite), row.Median, row.Max)
	}
	return t.String()
}

// --- E2: Figure 1 ------------------------------------------------------------

// Figure1Row is one bar of Figure 1.
type Figure1Row struct {
	Rank         int
	PopularSites int
	TailSites    int
	Vendor       string // attributed vendor slug, "" if unknown
}

// Figure1Result is experiment E2.
type Figure1Result struct {
	Rows []Figure1Row
	// ShopifyOutlier is the index (0-based) of the canvas whose tail
	// count most exceeds its popular count, the paper's Shopify bar;
	// -1 if none.
	ShopifyOutlier int
}

// Figure1 computes the top-k canvas popularity distribution.
func (s *Study) Figure1(k int) Figure1Result {
	res := Figure1Result{ShopifyOutlier: -1}
	groupVendor := s.groupVendorMap()
	best := 0
	for i, g := range s.Clustering.TopK(k) {
		row := Figure1Row{
			Rank:         i + 1,
			PopularSites: g.SiteCount(web.Popular),
			TailSites:    g.SiteCount(web.Tail),
			Vendor:       groupVendor[g.Hash],
		}
		res.Rows = append(res.Rows, row)
		if d := row.TailSites - row.PopularSites; d > best {
			best = d
			res.ShopifyOutlier = i
		}
	}
	return res
}

// groupVendorMap attributes each group hash to a vendor slug using the
// study's attribution ground truth.
func (s *Study) groupVendorMap() map[string]string {
	out := map[string]string{}
	for _, g := range s.Clustering.Groups {
		for slug, hashes := range s.GroundTruth.Hashes {
			if hashes[g.Hash] {
				out[g.Hash] = slug
				break
			}
		}
	}
	return out
}

// Render formats E2 as an ASCII Figure 1.
func (r Figure1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("E2 — Figure 1: sites per top test canvas (popular # / tail ~)\n")
	maxV := 1
	for _, row := range r.Rows {
		if row.PopularSites > maxV {
			maxV = row.PopularSites
		}
		if row.TailSites > maxV {
			maxV = row.TailSites
		}
	}
	for i, row := range r.Rows {
		marker := ""
		if i == r.ShopifyOutlier {
			marker = "  <-- tail outlier (Shopify)"
		}
		vendor := row.Vendor
		if vendor == "" {
			vendor = "-"
		}
		sb.WriteString(fmt.Sprintf("%3d %-22s pop %4d %-30s tail %4d %-30s%s\n",
			row.Rank, vendor, row.PopularSites,
			report.Bar(float64(row.PopularSites), float64(maxV), 30),
			row.TailSites,
			strings.ReplaceAll(report.Bar(float64(row.TailSites), float64(maxV), 30), "#", "~"),
			marker))
	}
	return sb.String()
}

// --- E3: reach (§4.2) -----------------------------------------------------------

// ReachResult is experiment E3.
type ReachResult struct {
	UniquePopular   int
	UniqueTail      int
	Top6CoveredPop  int
	TotalFPPop      int
	Top6CoveredTail int
	TotalFPTail     int
	Overlap         cluster.OverlapStats
	// TopGroupPopularShare is the largest single-canvas reach as a
	// fraction of popular fingerprinting sites (the "at most 3%" bound).
	TopGroupPopularSites int
}

// Reach computes E3.
func (s *Study) Reach() ReachResult {
	var r ReachResult
	r.UniquePopular = s.Clustering.UniqueCanvases(web.Popular)
	r.UniqueTail = s.Clustering.UniqueCanvases(web.Tail)
	r.Top6CoveredPop, r.TotalFPPop = s.Clustering.SitesCoveredByTop(6, web.Popular)
	r.Top6CoveredTail, r.TotalFPTail = s.Clustering.SitesCoveredByTop(6, web.Tail)
	r.Overlap = s.Clustering.Overlap()
	if len(s.Clustering.Groups) > 0 {
		r.TopGroupPopularSites = s.Clustering.Groups[0].SiteCount(web.Popular)
	}
	return r
}

// Render formats E3.
func (r ReachResult) Render() string {
	var sb strings.Builder
	sb.WriteString("E3 — Reach and canvas sharing (§4.2)\n")
	fmt.Fprintf(&sb, "  unique fingerprinting canvases: popular %d, tail %d\n", r.UniquePopular, r.UniqueTail)
	fmt.Fprintf(&sb, "  six most-frequent canvases cover: popular %s, tail %s of fp sites\n",
		report.Pct(r.Top6CoveredPop, r.TotalFPPop), report.Pct(r.Top6CoveredTail, r.TotalFPTail))
	fmt.Fprintf(&sb, "  tail fp sites sharing a canvas with a popular site: %s\n",
		report.Pct(r.Overlap.TailSharingWithTop, r.Overlap.TailFPSites))
	fmt.Fprintf(&sb, "  largest tail-only canvas group: %d sites (next: %d)\n",
		r.Overlap.LargestTailOnlyGroup, r.Overlap.SecondTailOnlyGroup)
	fmt.Fprintf(&sb, "  single-canvas max reach: %d popular sites (%s of the cohort's fp sites)\n",
		r.TopGroupPopularSites, report.Pct(r.TopGroupPopularSites, r.TotalFPPop))
	return sb.String()
}

// --- E4: Table 1 --------------------------------------------------------------------

// Table1Result is experiment E4.
type Table1Result struct {
	Rows            []VendorRow
	AttributedPop   int
	AttributedTail  int
	FPPop           int
	FPTail          int
	CommercialFPJS  [2]int
	RebranderCounts map[string][2]int
}

// VendorRow is one vendor's attribution outcome.
type VendorRow struct {
	Vendor        string
	Security      bool
	Popular, Tail int
	Method        string
}

// Table1 computes E4 from the attribution pass.
func (s *Study) Table1() Table1Result {
	a := s.Attribution
	res := Table1Result{
		AttributedPop:   a.AttributedSites[web.Popular],
		AttributedTail:  a.AttributedSites[web.Tail],
		FPPop:           a.FPSites[web.Popular],
		FPTail:          a.FPSites[web.Tail],
		CommercialFPJS:  [2]int{a.FPJS.CommercialPopular, a.FPJS.CommercialTail},
		RebranderCounts: a.FPJS.Rebranders,
	}
	for _, row := range a.Rows {
		res.Rows = append(res.Rows, VendorRow{
			Vendor:   row.Vendor,
			Security: row.Security,
			Popular:  row.Popular,
			Tail:     row.Tail,
			Method:   string(row.Method),
		})
	}
	return res
}

// Render formats E4 like Table 1.
func (r Table1Result) Render() string {
	t := report.NewTable("E4 — Table 1: sites linked to each fingerprinting vendor",
		"service", "category", "top", "top%", "tail", "tail%", "method")
	for _, row := range r.Rows {
		cat := "other"
		if row.Security {
			cat = "security"
		}
		t.AddRow(row.Vendor, cat, row.Popular, report.Pct(row.Popular, r.FPPop),
			row.Tail, report.Pct(row.Tail, r.FPTail), row.Method)
	}
	t.AddRow("Total attributed", "", r.AttributedPop, report.Pct(r.AttributedPop, r.FPPop),
		r.AttributedTail, report.Pct(r.AttributedTail, r.FPTail), "")
	out := t.String()
	out += fmt.Sprintf("  FingerprintJS commercial tier: %d popular, %d tail\n",
		r.CommercialFPJS[0], r.CommercialFPJS[1])
	var slugs []string
	for slug := range r.RebranderCounts {
		slugs = append(slugs, slug)
	}
	sort.Strings(slugs)
	for _, slug := range slugs {
		c := r.RebranderCounts[slug]
		out += fmt.Sprintf("  FPJS-OSS rebrander %-14s %d popular, %d tail\n", slug+":", c[0], c[1])
	}
	return out
}

// --- E5: Table 2 -----------------------------------------------------------------------

// Table2Row is one crawl condition's outcome.
type Table2Row struct {
	Condition    string
	CanvasesPop  int
	CanvasesTail int
	SitesPop     int
	SitesTail    int
}

// Table2Result is experiment E5.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 computes E5. RunAdblock must have been called.
func (s *Study) Table2() (Table2Result, error) {
	if s.ABP == nil || s.UBO == nil {
		return Table2Result{}, fmt.Errorf("canvassing: Table2 requires RunAdblock (set Options.WithAdblock)")
	}
	if s.Sites == nil {
		s.Sites = s.analyzeAll(s.Control.Pages, CondControl)
	}
	if s.ABPSites == nil {
		s.ABPSites = s.analyzeAll(s.ABP.Pages, CondABP)
	}
	if s.UBOSites == nil {
		s.UBOSites = s.analyzeAll(s.UBO.Pages, CondUBO)
	}
	var res Table2Result
	for _, cond := range []struct {
		name  string
		sites []detect.SiteCanvases
	}{
		{"Control", s.Sites},
		{"Adblock Plus", s.ABPSites},
		{"uBlock Origin", s.UBOSites},
	} {
		sites := cond.sites
		row := Table2Row{Condition: cond.name}
		for i := range sites {
			st := &sites[i]
			if !st.OK {
				continue
			}
			n := len(st.Fingerprintable())
			switch st.Cohort {
			case web.Popular:
				row.CanvasesPop += n
				if n > 0 {
					row.SitesPop++
				}
			case web.Tail:
				row.CanvasesTail += n
				if n > 0 {
					row.SitesTail++
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats E5 like Table 2.
func (r Table2Result) Render() string {
	t := report.NewTable("E5 — Table 2: effect of ad blockers on observed test canvases",
		"condition", "canvases-top", "canvases-tail", "sites-top", "sites-tail")
	for _, row := range r.Rows {
		t.AddRow(row.Condition, row.CanvasesPop, row.CanvasesTail, row.SitesPop, row.SitesTail)
	}
	return t.String()
}

// --- E6: Table 4 ------------------------------------------------------------------------

// Table4Result is experiment E6: per-cohort counts of test canvases
// generated by scripts covered by each blocklist.
type Table4Result struct {
	// Counts maps list name → [popular, tail] covered canvas counts.
	Counts map[string][2]int
	// Totals holds the fingerprintable canvas totals per cohort.
	Totals [2]int
}

// Table4 computes E6 with the paper's §5.1 methodology: EasyList and
// EasyPrivacy rules are applied to the script URL with resource type
// script and no dynamic context; Disconnect by script domain.
func (s *Study) Table4() Table4Result {
	res := Table4Result{Counts: map[string][2]int{}}
	for i := range s.Sites {
		st := &s.Sites[i]
		if !st.OK || st.Cohort == web.Demo {
			continue
		}
		idx := 0
		if st.Cohort == web.Tail {
			idx = 1
		}
		for _, c := range st.Fingerprintable() {
			res.Totals[idx]++
			host := scriptHost(c.ScriptURL)
			el, ep, disc := s.Lists.CoverageOf(c.ScriptURL, host)
			if el {
				bump(res.Counts, "EasyList", idx)
			}
			if ep {
				bump(res.Counts, "EasyPrivacy", idx)
			}
			if disc {
				bump(res.Counts, "Disconnect", idx)
			}
			if el || ep || disc {
				bump(res.Counts, "Any", idx)
			}
			if el && ep && disc {
				bump(res.Counts, "All", idx)
			}
		}
	}
	return res
}

func bump(m map[string][2]int, key string, idx int) {
	v := m[key]
	v[idx]++
	m[key] = v
}

func scriptHost(rawURL string) string {
	u, err := netsim.ParseURL(rawURL)
	if err != nil {
		return ""
	}
	return u.Host
}

// Render formats E6 like Table 4.
func (r Table4Result) Render() string {
	t := report.NewTable("E6 — Table 4: test canvases from scripts on crowdsourced blocklists",
		"blocklist", "top-20k", "top%", "tail-20k", "tail%")
	for _, name := range []string{"EasyList", "EasyPrivacy", "Disconnect", "Any", "All"} {
		c := r.Counts[name]
		t.AddRow(name, c[0], report.Pct(c[0], r.Totals[0]), c[1], report.Pct(c[1], r.Totals[1]))
	}
	t.AddRow("Total canvases", r.Totals[0], "", r.Totals[1], "")
	return t.String()
}

// --- E7: evasion (§5.2) ---------------------------------------------------------------------

// EvasionRow summarizes serving-mode evasion for one cohort.
type EvasionRow struct {
	Cohort          web.Cohort
	FPSites         int
	FirstPartySites int // ≥1 canvas from a same-site script URL
	SubdomainSites  int // ≥1 canvas from a strict subdomain of the site
	CDNSites        int // ≥1 canvas from a popular shared CDN
	CNAMESites      int // ≥1 canvas from a CNAME-cloaked first-party host
}

// EvasionResult is experiment E7.
type EvasionResult struct {
	Rows []EvasionRow
}

// Evasion computes E7 from script URLs and DNS.
func (s *Study) Evasion() EvasionResult {
	var res EvasionResult
	for _, cohort := range []web.Cohort{web.Popular, web.Tail} {
		row := EvasionRow{Cohort: cohort}
		for i := range s.Sites {
			st := &s.Sites[i]
			if !st.OK || st.Cohort != cohort || !st.HasFingerprinting() {
				continue
			}
			row.FPSites++
			var fp, sub, cdn, cname bool
			for _, c := range st.Fingerprintable() {
				host := scriptHost(c.ScriptURL)
				if host == "" {
					continue
				}
				if netsim.SameSite(host, st.Domain) {
					switch {
					case s.Web.DNS.IsCloaked(host):
						cname = true
					case netsim.IsSubdomainOf(host, st.Domain):
						sub = true
					default:
						// Served from the site's own apex/www host.
						fp = true
					}
				}
				if netsim.ServedFromPopularCDN(host) {
					cdn = true
				}
			}
			if fp {
				row.FirstPartySites++
			}
			if sub {
				row.SubdomainSites++
			}
			if cdn {
				row.CDNSites++
			}
			if cname {
				row.CNAMESites++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats E7.
func (r EvasionResult) Render() string {
	t := report.NewTable("E7 — Blocklist evasion: how fingerprinting scripts are served (§5.2)",
		"cohort", "fp-sites", "first-party", "subdomain", "cdn", "cname-cloaked")
	for _, row := range r.Rows {
		t.AddRow(row.Cohort, row.FPSites,
			fmt.Sprintf("%d (%s)", row.FirstPartySites, report.Pct(row.FirstPartySites, row.FPSites)),
			fmt.Sprintf("%d (%s)", row.SubdomainSites, report.Pct(row.SubdomainSites, row.FPSites)),
			fmt.Sprintf("%d (%s)", row.CDNSites, report.Pct(row.CDNSites, row.FPSites)),
			fmt.Sprintf("%d (%s)", row.CNAMESites, report.Pct(row.CNAMESites, row.FPSites)))
	}
	return t.String()
}

// --- E8: randomization (§5.3) -------------------------------------------------------------------

// RandomizationResult is experiment E8.
type RandomizationResult struct {
	// CheckingSites / FPSites per cohort: sites performing the
	// double-render inconsistency check.
	CheckingPop, FPPop   int
	CheckingTail, FPTail int
	// Defense outcomes on a sample re-crawl of checking sites.
	SampleSites        int
	PerRenderDetected  int // sites whose double-render pairs now differ
	PerSessionDetected int // should stay 0 (footnote 7)
}

// Randomization computes E8: the prevalence of Algorithm-1 checks, and
// re-crawls a sample of fingerprinting sites under the two defense
// disciplines to show which one the check catches. Results are cached
// per sample size: the defense re-crawls are expensive and several
// reports request the same sample, and caching also keeps the evidence
// log free of duplicate verdict events.
func (s *Study) Randomization(sampleSize int) RandomizationResult {
	if r, ok := s.randCache[sampleSize]; ok {
		return r
	}
	var r RandomizationResult
	r.CheckingPop, r.FPPop = cluster.InconsistencyCheckStats(s.Sites, web.Popular)
	r.CheckingTail, r.FPTail = cluster.InconsistencyCheckStats(s.Sites, web.Tail)

	// Sample sites that double-render in the control crawl.
	var sample []*web.Site
	for i := range s.Sites {
		st := &s.Sites[i]
		if !st.OK || st.Cohort == web.Demo {
			continue
		}
		counts := map[string]int{}
		doubles := false
		for _, c := range st.Fingerprintable() {
			counts[c.Hash]++
			if counts[c.Hash] >= 2 {
				doubles = true
				break
			}
		}
		if doubles {
			if site := s.Web.SiteByDomain(st.Domain); site != nil {
				sample = append(sample, site)
			}
		}
		if len(sample) >= sampleSize {
			break
		}
	}
	r.SampleSites = len(sample)
	if len(sample) == 0 {
		s.cacheRandomization(sampleSize, r)
		return r
	}
	// detectBroken re-crawls the sample under a defense and runs the
	// Algorithm-1 inconsistency check on each page, recording one
	// randomize.verdict event per site under the defense's condition
	// label.
	detectBroken := func(d *randomize.Defense) int {
		condition := "defense-" + d.Mode().String()
		cfg := s.crawlConfig(condition)
		cfg.ExtractHookFor = d.PageHook
		res := crawler.Crawl(s.Web, sample, cfg)
		broken := 0
		for _, p := range res.SuccessfulPages() {
			urls := make([]string, 0, len(p.Extractions))
			for _, e := range p.Extractions {
				urls = append(urls, e.DataURL)
			}
			if randomize.CheckInconsistency(s.events(), condition, p.Domain, d.Mode().String(), urls) {
				broken++
			}
		}
		return broken
	}
	r.PerRenderDetected = detectBroken(randomize.NewDefense(randomize.PerRender, s.Options.Seed))
	r.PerSessionDetected = detectBroken(randomize.NewDefense(randomize.PerSession, s.Options.Seed))
	s.cacheRandomization(sampleSize, r)
	return r
}

// cacheRandomization memoizes an E8 result by sample size.
func (s *Study) cacheRandomization(sampleSize int, r RandomizationResult) {
	if s.randCache == nil {
		s.randCache = map[int]RandomizationResult{}
	}
	s.randCache[sampleSize] = r
}

// Render formats E8.
func (r RandomizationResult) Render() string {
	var sb strings.Builder
	sb.WriteString("E8 — Canvas randomization and the double-render check (§5.3, Algorithm 1)\n")
	fmt.Fprintf(&sb, "  fp sites performing the inconsistency check: popular %s, tail %s\n",
		report.Pct(r.CheckingPop, r.FPPop), report.Pct(r.CheckingTail, r.FPTail))
	fmt.Fprintf(&sb, "  defense re-crawl over %d double-rendering sites:\n", r.SampleSites)
	fmt.Fprintf(&sb, "    per-render noise:  detected on %d/%d sites (check fires)\n", r.PerRenderDetected, r.SampleSites)
	fmt.Fprintf(&sb, "    per-session noise: detected on %d/%d sites (check blind, Firefox-style)\n", r.PerSessionDetected, r.SampleSites)
	return sb.String()
}

// --- E9: cross-machine validation (§3.1) -----------------------------------------------------------

// CrossMachineResult is experiment E9.
type CrossMachineResult struct {
	SitesCompared      int
	EventsCompared     int
	BytesDifferEvents  int
	GroupingConsistent bool
}

// CrossMachine computes E9. RunM1 must have been called.
func (s *Study) CrossMachine() (CrossMachineResult, error) {
	if s.M1 == nil {
		return CrossMachineResult{}, fmt.Errorf("canvassing: CrossMachine requires RunM1 (set Options.WithM1)")
	}
	var r CrossMachineResult
	intelSites := s.Sites
	if intelSites == nil {
		intelSites = s.analyzeAll(s.Control.Pages, CondControl)
		s.Sites = intelSites
	}
	if s.M1Sites == nil {
		s.M1Sites = s.analyzeAll(s.M1.Pages, CondM1)
	}
	m1Sites := s.M1Sites
	// Assign group labels per machine in first-seen order; the event
	// label sequences must match exactly for grouping to be invariant.
	label := func(sites []detect.SiteCanvases) []int {
		ids := map[string]int{}
		var seq []int
		for i := range sites {
			st := &sites[i]
			if !st.OK {
				continue
			}
			for _, c := range st.Fingerprintable() {
				id, ok := ids[c.Hash]
				if !ok {
					id = len(ids)
					ids[c.Hash] = id
				}
				seq = append(seq, id)
			}
		}
		return seq
	}
	intelSeq := label(intelSites)
	m1Seq := label(m1Sites)
	r.GroupingConsistent = len(intelSeq) == len(m1Seq)
	if r.GroupingConsistent {
		for i := range intelSeq {
			if intelSeq[i] != m1Seq[i] {
				r.GroupingConsistent = false
				break
			}
		}
	}
	r.EventsCompared = len(intelSeq)
	// Byte-level comparison site by site.
	m1ByDomain := map[string]*detect.SiteCanvases{}
	for i := range m1Sites {
		m1ByDomain[m1Sites[i].Domain] = &m1Sites[i]
	}
	for i := range intelSites {
		a := &intelSites[i]
		b := m1ByDomain[a.Domain]
		if !a.OK || b == nil {
			continue
		}
		af, bf := a.Fingerprintable(), b.Fingerprintable()
		if len(af) == 0 {
			continue
		}
		r.SitesCompared++
		for j := range af {
			if j < len(bf) && af[j].Hash != bf[j].Hash {
				r.BytesDifferEvents++
			}
		}
	}
	return r, nil
}

// Render formats E9.
func (r CrossMachineResult) Render() string {
	var sb strings.Builder
	sb.WriteString("E9 — Cross-machine validation: Intel vs Apple M1 (§3.1)\n")
	fmt.Fprintf(&sb, "  fingerprinting sites compared: %d (events: %d)\n", r.SitesCompared, r.EventsCompared)
	fmt.Fprintf(&sb, "  events whose canvas bytes differ across machines: %d (%s)\n",
		r.BytesDifferEvents, report.Pct(r.BytesDifferEvents, r.EventsCompared))
	fmt.Fprintf(&sb, "  cross-site grouping identical on both machines: %v\n", r.GroupingConsistent)
	return sb.String()
}

// --- E10: detection-filter audit (§3.2, A.2) -----------------------------------------------------------

// FiltersResult is experiment E10.
type FiltersResult struct {
	PerCohort map[web.Cohort]detect.Stats
}

// Filters computes E10.
func (s *Study) Filters() FiltersResult {
	res := FiltersResult{PerCohort: map[web.Cohort]detect.Stats{}}
	for _, cohort := range []web.Cohort{web.Popular, web.Tail} {
		res.PerCohort[cohort] = detect.ComputeStats(s.cohortSites(cohort))
	}
	return res
}

// Render formats E10.
func (r FiltersResult) Render() string {
	t := report.NewTable("E10 — Detection-filter audit (§3.2, Appendix A.2)",
		"cohort", "extractions", "fingerprintable", "yield", "lossy", "small", "animation", "fully-excluded-sites")
	for _, cohort := range []web.Cohort{web.Popular, web.Tail} {
		st := r.PerCohort[cohort]
		t.AddRow(cohort, st.TotalExtractions, st.Fingerprintable,
			report.Pct(st.Fingerprintable, st.TotalExtractions),
			st.ByReason[detect.LossyFormat], st.ByReason[detect.SmallCanvas],
			st.ByReason[detect.AnimationScript], st.SitesFullyExcluded)
	}
	return t.String()
}

// --- E11: Table 3 (attribution methods) ---------------------------------------------------------------

// Table3Row is one vendor's attribution bookkeeping row.
type Table3Row struct {
	Vendor  string
	Method  string
	Pattern string
}

// Table3Result is experiment E11.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 computes E11.
func (s *Study) Table3() Table3Result {
	var res Table3Result
	for _, row := range s.Attribution.Rows {
		pattern := vendorPattern(row.Slug)
		res.Rows = append(res.Rows, Table3Row{
			Vendor:  row.Vendor,
			Method:  string(row.Method),
			Pattern: pattern,
		})
	}
	return res
}

func vendorPattern(slug string) string {
	if slug == "imperva" {
		return `regexp: https?://(?:www\.)?[^/]+/([A-Za-z\-]+)`
	}
	if v := services.BySlug(slug); v != nil {
		return v.URLPattern
	}
	return ""
}

// Render formats E11 like Table 3.
func (r Table3Result) Render() string {
	t := report.NewTable("E11 — Table 3: how vendor test canvases were attributed",
		"service", "method", "script pattern")
	for _, row := range r.Rows {
		t.AddRow(row.Vendor, row.Method, row.Pattern)
	}
	return t.String()
}

// --- E12: rule-context failure (A.6) ------------------------------------------------------------------------

// RuleContextResult is experiment E12.
type RuleContextResult struct {
	DocumentOnlyRules int
	MgidListed        bool // a naive domain check finds mgid in EasyList
	MgidMatchesScript bool // adblockparser(type=script) matches
	MgidBlockedLive   bool // the ABP extension blocks the script load
	BlockedByEasyPriv bool // EasyPrivacy's script rule would match
}

// RuleContext computes E12.
func (s *Study) RuleContext() RuleContextResult {
	var r RuleContextResult
	r.DocumentOnlyRules = s.Lists.EasyList.DocumentOnlyRuleCount()
	for _, rule := range s.Lists.EasyList.BlockRules() {
		if strings.Contains(rule.Raw, "mgid.com") {
			r.MgidListed = true
		}
	}
	scriptURL := "https://mgid.com/uid/fp.js"
	req := blocklist.Request{URL: scriptURL, Type: blocklist.TypeScript, PageHost: "news.example", ThirdParty: true}
	r.MgidMatchesScript = s.Lists.EasyList.Match(req) != nil
	r.MgidBlockedLive = newABP(s.Lists).BlockScript(req)
	r.BlockedByEasyPriv = s.Lists.EasyPrivacy.Match(req) != nil
	return r
}

// Render formats E12.
func (r RuleContextResult) Render() string {
	var sb strings.Builder
	sb.WriteString("E12 — EasyList rule-context failure (Appendix A.6)\n")
	fmt.Fprintf(&sb, "  EasyList rules carrying a lone $document modifier: %d\n", r.DocumentOnlyRules)
	fmt.Fprintf(&sb, "  mgid.com present in EasyList (naive domain check):  %v\n", r.MgidListed)
	fmt.Fprintf(&sb, "  mgid fp script matched with resource type script:   %v\n", r.MgidMatchesScript)
	fmt.Fprintf(&sb, "  mgid fp script blocked by the live ABP extension:   %v\n", r.MgidBlockedLive)
	fmt.Fprintf(&sb, "  (EasyPrivacy would match it: %v — but the paper's extensions use EasyList)\n", r.BlockedByEasyPriv)
	return sb.String()
}

// --- E13: crawl health under fault injection ----------------------------------------------------------------

// CrawlHealthRow summarizes one crawl condition's visit outcomes under
// the study's fault model.
type CrawlHealthRow struct {
	Condition string
	Visited   int
	OK        int
	Degraded  int
	Failed    int
	// Failure-reason splits (subsets of Failed).
	Refused, Timeout, CircuitOpen, Unreachable int
}

// CrawlHealthResult is experiment E13: how the crawl fared against the
// injected faults, per condition plus the engine-level retry counters.
// Prevalence and every downstream experiment compute over the OK
// survivors only, so this table is the denominator audit for a faulted
// run.
type CrawlHealthResult struct {
	// FaultRate echoes the study's per-site fault probability.
	FaultRate float64
	Rows      []CrawlHealthRow
	// Aggregate resilience-engine counters across all crawls, read from
	// the telemetry registry (crawl.retry, crawl.timeout, crawl.refused,
	// crawl.circuit-open).
	RetryTotal, TimeoutTotal, RefusedTotal, CircuitOpenTotal int64
}

// CrawlHealth computes E13 over every crawl the study has run.
func (s *Study) CrawlHealth() CrawlHealthResult {
	res := CrawlHealthResult{}
	if s.Faults != nil {
		res.FaultRate = s.Faults.Rate()
	}
	add := func(cond string, r *crawler.Result) {
		if r == nil {
			return
		}
		st := r.Stats().Total
		res.Rows = append(res.Rows, CrawlHealthRow{
			Condition:   cond,
			Visited:     st.Visited,
			OK:          st.OK,
			Degraded:    st.Degraded,
			Failed:      st.Failed,
			Refused:     st.FailReasons[crawler.FailRefused],
			Timeout:     st.FailReasons[crawler.FailTimeout],
			CircuitOpen: st.FailReasons[crawler.FailCircuitOpen],
			Unreachable: st.FailReasons[crawler.FailUnreachable],
		})
	}
	add(CondControl, s.Control)
	add(CondABP, s.ABP)
	add(CondUBO, s.UBO)
	add(CondM1, s.M1)
	if s.tel != nil {
		// Read through Snapshot: asking the registry for the counters
		// would register them, polluting fault-free runs.
		snap := s.tel.Metrics.Snapshot()
		res.RetryTotal = snap.Counters["crawl.retry"]
		res.TimeoutTotal = snap.Counters["crawl.timeout"]
		res.RefusedTotal = snap.Counters["crawl.refused"]
		res.CircuitOpenTotal = snap.Counters["crawl.circuit-open"]
	}
	return res
}

// Render formats E13.
func (r CrawlHealthResult) Render() string {
	t := report.NewTable(fmt.Sprintf("E13 — crawl health under fault injection (rate %.0f%%)", r.FaultRate*100),
		"condition", "visited", "ok", "degraded", "failed", "refused", "timeout", "circuit-open")
	for _, row := range r.Rows {
		t.AddRow(row.Condition, fmt.Sprint(row.Visited), fmt.Sprint(row.OK), fmt.Sprint(row.Degraded),
			fmt.Sprint(row.Failed), fmt.Sprint(row.Refused), fmt.Sprint(row.Timeout), fmt.Sprint(row.CircuitOpen))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "  engine: retries %d, timeouts %d, refusals %d, circuit-opens %d\n",
		r.RetryTotal, r.TimeoutTotal, r.RefusedTotal, r.CircuitOpenTotal)
	return sb.String()
}
