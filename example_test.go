package canvassing_test

import (
	"fmt"

	"canvassing"
)

// ExampleRun shows the minimal end-to-end study: generate a synthetic
// web, crawl it, and read a headline number. Deterministic per seed.
func ExampleRun() {
	study := canvassing.Run(canvassing.Options{Seed: 1, Scale: 0.01})
	prev := study.Prevalence()
	fmt.Println(len(prev.Rows), "cohorts measured")
	// Output: 2 cohorts measured
}

// ExampleStudy_Table1 demonstrates reading structured attribution results
// instead of rendered tables.
func ExampleStudy_Table1() {
	study := canvassing.Run(canvassing.Options{Seed: 1, Scale: 0.01})
	t1 := study.Table1()
	security := 0
	for _, row := range t1.Rows {
		if row.Security {
			security++
		}
	}
	fmt.Println(security, "security vendors in Table 1")
	// Output: 8 security vendors in Table 1
}

// ExampleEntropyAnalysis measures canvas fingerprint discriminating power
// without running any crawl.
func ExampleEntropyAnalysis() {
	r := canvassing.EntropyAnalysis(8, 1)
	fmt.Println(len(r.Results), "vendor scripts measured over", r.Machines, "machines")
	// Output: 13 vendor scripts measured over 8 machines
}
