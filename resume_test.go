package canvassing

import (
	"bytes"
	"path/filepath"
	"testing"
)

// The resume oracle: interrupting a checkpointed study and resuming it
// must be invisible in every deterministic bundle artifact. For each
// configuration a baseline run (checkpointing and snapshot reuse on,
// never interrupted) writes a reference bundle; each interrupted run is
// stopped by the checkpoint writer's StopAfter lever at a chosen cut —
// 25/50/75% of the control crawl, and once mid-ABP-re-crawl — then
// continued with Resume(dir), and the resumed bundle must reproduce
// the reference byte for byte: manifest.json, events.jsonl, report.txt,
// and the deterministic metrics projection. Cut points land in both
// serial and wide pools, clean and fault-injected runs.
//
// This is the companion of TestAnalysisDeterminismOracle (analysis
// width axis) and TestCrawlTelemetryWidthInvariant (crawl width axis);
// together they cover every scheduling axis the pipeline has.

// resumeCase is one interruption scenario.
type resumeCase struct {
	name      string
	seed      uint64
	workers   int
	fault     float64
	stopAfter int // checkpoint writes before the stop (see layout note)
}

// With Scale 0.02 (800 sites) and CheckpointEvery 100, the control
// crawl checkpoints at frontiers 100..700 (writes 1..7) plus a final
// write (8); the crawl.control phase is write 9 and analyze write 10,
// so StopAfter 2/4/6 cut the control crawl at 25/50/75% and StopAfter
// 12 cuts the ABP re-crawl at its second commit.
var resumeCases = []resumeCase{
	{name: "clean serial, 25% of control", seed: 1, workers: 1, fault: 0, stopAfter: 2},
	{name: "clean serial, 75% of control", seed: 1, workers: 1, fault: 0, stopAfter: 6},
	{name: "clean wide, 50% of control", seed: 1, workers: 8, fault: 0, stopAfter: 4},
	{name: "faulted wide, 25% of control", seed: 42, workers: 8, fault: 0.35, stopAfter: 2},
	{name: "faulted wide, mid-ABP re-crawl", seed: 42, workers: 8, fault: 0.35, stopAfter: 12},
	{name: "faulted serial, 50% of control", seed: 42, workers: 1, fault: 0.35, stopAfter: 4},
}

// resumeOpts is the shared run shape of the oracle.
func resumeOpts(c resumeCase, dir string) Options {
	return Options{
		Seed:            c.seed,
		Scale:           0.02,
		Workers:         c.workers,
		AnalysisWorkers: c.workers,
		WithAdblock:     true,
		FaultRate:       c.fault,
		CheckpointDir:   dir,
		CheckpointEvery: 100,
		SnapshotReuse:   true,
		// The resume oracle runs with per-visit tracing on: interrupt,
		// resume, and exemplar capture must not perturb the bundle.
		TraceVisits: true,
	}
}

// checkpointedRun mirrors Run() with the StopAfter lever armed between
// New and the first crawl — the window Run does not expose.
func checkpointedRun(opts Options, stopAfter int) *Study {
	s := New(opts)
	if stopAfter > 0 {
		s.Checkpointer().StopAfter = stopAfter
	}
	s.RunControl()
	if s.Halted {
		return s
	}
	s.Analyze()
	if opts.WithAdblock {
		s.RunAdblock()
	}
	return s
}

// writeBundleDir writes a study's bundle into a temp dir.
func writeBundleDir(t *testing.T, s *Study) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "bundle")
	if err := s.WriteBundle(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestResumeOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline per interruption scenario")
	}
	// Baselines are shared across cases with the same (seed, workers,
	// fault) triple; the interruption point does not change them.
	type baseKey struct {
		seed    uint64
		workers int
		fault   float64
	}
	type baseline struct {
		manifest, events, report, metrics []byte
	}
	baselines := map[baseKey]baseline{}
	baseFor := func(c resumeCase) baseline {
		k := baseKey{c.seed, c.workers, c.fault}
		if b, ok := baselines[k]; ok {
			return b
		}
		s := checkpointedRun(resumeOpts(c, t.TempDir()), 0)
		if s.Halted {
			t.Fatal("baseline run halted without a StopAfter")
		}
		dir := writeBundleDir(t, s)
		b := baseline{
			manifest: readFile(t, dir, "manifest.json"),
			events:   readFile(t, dir, "events.jsonl"),
			report:   readFile(t, dir, "report.txt"),
			metrics:  deterministicMetrics(t, dir),
		}
		baselines[k] = b
		return b
	}

	for _, c := range resumeCases {
		t.Run(c.name, func(t *testing.T) {
			ref := baseFor(c)
			ckptDir := t.TempDir()

			interrupted := checkpointedRun(resumeOpts(c, ckptDir), c.stopAfter)
			if !interrupted.Halted {
				t.Fatalf("StopAfter %d did not interrupt the study", c.stopAfter)
			}

			resumed, err := Resume(ckptDir)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Halted {
				t.Fatal("resumed study halted again without a StopAfter")
			}
			dir := writeBundleDir(t, resumed)
			if got := readFile(t, dir, "manifest.json"); !bytes.Equal(got, ref.manifest) {
				t.Errorf("manifest.json differs after resume\n got: %s\nwant: %s", got, ref.manifest)
			}
			if got := readFile(t, dir, "events.jsonl"); !bytes.Equal(got, ref.events) {
				t.Errorf("events.jsonl differs after resume (%d vs %d bytes); first divergence at byte %d",
					len(got), len(ref.events), firstDiff(got, ref.events))
			}
			if got := readFile(t, dir, "report.txt"); !bytes.Equal(got, ref.report) {
				t.Errorf("report.txt differs after resume")
			}
			if got := deterministicMetrics(t, dir); !bytes.Equal(got, ref.metrics) {
				t.Errorf("deterministic metrics differ after resume\n got: %s\nwant: %s", got, ref.metrics)
			}
			// The snapshot store must have survived the resume and been
			// reused by the re-crawls, or this oracle never exercised the
			// restored store.
			if hits, _ := resumed.Snapshots.Counts(); hits == 0 {
				t.Error("resumed run's snapshot store recorded no hits")
			}
		})
	}
}

// TestSnapshotReuseInvisibleInArtifacts pins the acceptance criterion
// that routing the re-crawls through the snapshot store changes no
// deterministic bundle artifact: hit/miss counters live on the store,
// outside the metrics registry, precisely so the bundle stays
// byte-identical while the store demonstrably absorbs re-crawl
// fetches.
func TestSnapshotReuseInvisibleInArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline twice")
	}
	opts := Options{Seed: 7, Scale: 0.02, Workers: 4, WithAdblock: true, FaultRate: 0.2}
	plain := Run(opts)
	plainDir := writeBundleDir(t, plain)

	opts.SnapshotReuse = true
	reuse := Run(opts)
	reuseDir := writeBundleDir(t, reuse)

	hits, misses := reuse.Snapshots.Counts()
	if hits == 0 || misses == 0 {
		t.Fatalf("snapshot store counts %d/%d: reuse never exercised", hits, misses)
	}
	for _, name := range []string{"manifest.json", "events.jsonl", "report.txt", "metrics.deterministic.json"} {
		a, b := readFile(t, plainDir, name), readFile(t, reuseDir, name)
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs under snapshot reuse; first divergence at byte %d", name, firstDiff(a, b))
		}
	}
}
