package canvassing

import (
	"strings"
	"testing"
)

// TestStudyTelemetry is the acceptance check for the observability
// layer: a full Run yields non-zero visit-latency histogram counts,
// spans covering every executed phase, and a parse-cache hit rate.
func TestStudyTelemetry(t *testing.T) {
	s := Run(Options{Seed: 7, Scale: 0.01, WithAdblock: true, WithM1: true})
	tel := s.Telemetry()
	if tel == nil {
		t.Fatal("study must expose telemetry")
	}

	snap := tel.Metrics.Snapshot()
	lat := snap.Histograms["crawl.visit.seconds"]
	if lat.Count == 0 {
		t.Fatal("visit latency histogram is empty after a full run")
	}
	// Control + 2 ground-truth-ish + ABP + UBO + M1 crawls all visit
	// every cohort site, so latency samples far exceed one crawl.
	if lat.Count < int64(4*len(s.crawlSites)) {
		t.Fatalf("latency samples = %d, want at least %d (all crawls instrumented)",
			lat.Count, 4*len(s.crawlSites))
	}
	hits := snap.Counters["crawl.parsecache.hits"]
	misses := snap.Counters["crawl.parsecache.misses"]
	if hits == 0 || hits+misses == 0 {
		t.Fatalf("parse-cache telemetry missing: hits=%d misses=%d", hits, misses)
	}

	phases := map[string]bool{}
	for _, r := range tel.Tracer.Records() {
		phases[r.Name] = true
	}
	for _, want := range []string{
		"webgen", "crawl.control", "analyze.control", "cluster", "attrib",
		"groundtruth", "crawl.adblock", "abp", "analyze.abp", "ubo",
		"analyze.ubo", "crawl.m1", "analyze.m1",
	} {
		if !phases[want] {
			t.Fatalf("phase %q has no span; got %v", want, phases)
		}
	}
}

func TestPhaseTimingsRender(t *testing.T) {
	s := Run(Options{Seed: 7, Scale: 0.01})
	text := s.PhaseTimings()
	for _, want := range []string{"Phase timings", "webgen", "crawl.control", "analyze.control", "total"} {
		if !strings.Contains(text, want) {
			t.Fatalf("phase table missing %q:\n%s", want, text)
		}
	}
	// Phases that did not run must not appear.
	if strings.Contains(text, "crawl.m1") {
		t.Fatalf("phase table lists a crawl that never ran:\n%s", text)
	}

	full := s.TelemetryReport()
	for _, want := range []string{"Control crawl", "parse-cache hit rate", "Analysis pipeline", "memo cache", "Metrics", "crawl.visit.seconds"} {
		if !strings.Contains(full, want) {
			t.Fatalf("telemetry report missing %q:\n%s", want, full)
		}
	}
}
