// Command benchdiff compares two benchmark JSON snapshots (from
// cmd/benchjson / `make bench`) and exits non-zero when any benchmark
// regressed past the threshold — the CI gate `make bench-check` runs.
//
//	benchdiff [flags] BASELINE.json NEW.json
//	benchdiff [flags] -synthesize 10 BASELINE.json
//
// The gate is tuned for -benchtime 1x snapshots: single-iteration
// timings are noisy, so only benchmarks whose baseline is at least
// -min-ns are gated, and the default threshold is a generous 400%.
// -synthesize skips the new snapshot and instead multiplies every
// baseline timing by the given factor — a self-test proving the gate
// fires (used by `make bench-check` before trusting a green result).
//
// Exit codes: 0 no regression, 1 regression detected, 2 usage or
// input error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"canvassing/internal/benchfmt"
)

func main() {
	threshold := flag.Float64("threshold", benchfmt.DefaultThresholdPct,
		"ns/op increase (percent) that counts as a regression")
	minNs := flag.Float64("min-ns", benchfmt.DefaultMinNs,
		"ignore benchmarks whose baseline ns/op is below this floor")
	synthesize := flag.Float64("synthesize", 0,
		"self-test: compare the baseline against itself scaled by this factor instead of reading a new snapshot")
	top := flag.Int("top", 10, "largest deltas to print")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] BASELINE.json NEW.json\n")
		fmt.Fprintf(os.Stderr, "       benchdiff [flags] -synthesize FACTOR BASELINE.json\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	args := flag.Args()
	wantArgs := 2
	if *synthesize > 0 {
		wantArgs = 1
	}
	if len(args) != wantArgs {
		flag.Usage()
		os.Exit(2)
	}

	baseline, err := benchfmt.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	if len(baseline) == 0 {
		fatal(fmt.Errorf("benchdiff: baseline %s holds no benchmarks", args[0]))
	}

	var fresh []benchfmt.Result
	if *synthesize > 0 {
		fresh = make([]benchfmt.Result, len(baseline))
		for i, r := range baseline {
			r.NsPerOp *= *synthesize
			fresh[i] = r
		}
		fmt.Fprintf(os.Stderr, "benchdiff: self-test — baseline scaled %gx\n", *synthesize)
	} else {
		fresh, err = benchfmt.ReadFile(args[1])
		if err != nil {
			fatal(err)
		}
	}

	c := benchfmt.Compare(baseline, fresh, benchfmt.CompareOpts{
		ThresholdPct: *threshold,
		MinNs:        *minNs,
	})

	fmt.Printf("benchdiff: %d compared, %d added, %d missing (gate: >%.0f%% on baselines ≥%s)\n",
		len(c.Deltas), len(c.Added), len(c.Missing),
		*threshold, time.Duration(*minNs).Round(time.Microsecond))
	for i, d := range c.Deltas {
		if i >= *top {
			break
		}
		mark := " "
		switch {
		case d.Regression:
			mark = "!"
		case !d.Gated:
			mark = "~" // below the noise floor, informational only
		}
		fmt.Printf("%s %-60s %12s -> %12s  %+7.1f%%\n", mark, d.Key,
			ns(d.OldNs), ns(d.NewNs), d.Pct)
	}
	for _, m := range c.Missing {
		fmt.Printf("? missing from new snapshot: %s\n", m)
	}

	if regs := c.Regressions(); len(regs) > 0 {
		fmt.Printf("benchdiff: %d regression(s) past the gate\n", len(regs))
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

// ns renders a ns/op value as a duration.
func ns(v float64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
