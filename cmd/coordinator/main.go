// Command coordinator runs a distributed study: it partitions each
// crawl condition's site frontier into seeded work-units, dispatches
// them across a pool of worker slots, reassigns and resumes units whose
// worker died mid-unit, merges the partial bundles, and runs the
// analysis pipeline over the recombined crawls. The resulting bundle is
// byte-identical to the single-process `repro` run with the same
// options — the partition-invariance contract `make distrib-smoke`
// checks end to end.
//
// By default units run in-process (worker goroutines sharing one
// generated web). -worker <crawl-binary> switches to the local-process
// transport: every unit attempt is a spawned `crawl -distrib-unit`
// process that rebuilds the world from the unit spec on disk.
//
//	coordinator -seed 1 -scale 0.05 -partitions 4 -dir /tmp/run -out /tmp/bundle
//	coordinator -seed 1 -scale 0.05 -partitions 4 -dir /tmp/run -worker ./bin/crawl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"canvassing"
	"canvassing/internal/distrib"
)

func main() {
	seed := flag.Uint64("seed", 1, "study seed")
	scale := flag.Float64("scale", 0.05, "web scale")
	workers := flag.Int("workers", 8, "crawler worker pool width (per unit)")
	adblock := flag.Bool("adblock", false, "include the ABP/uBO re-crawls")
	m1 := flag.Bool("m1", false, "include the Apple-silicon validation crawl")
	faults := flag.Float64("faults", 0, "fault-injection rate on cohort crawls")
	retries := flag.Int("retries", 0, "resilience retries under -faults (0 = crawler default)")
	visitTimeout := flag.Duration("visit-timeout", 0, "visit timeout under -faults (0 = crawler default)")
	snapshots := flag.Bool("snapshots", false, "route page fetches through the content-addressed snapshot store")
	trace := flag.Bool("trace-visits", false, "capture per-visit span exemplars")
	every := flag.Int("checkpoint-every", 0, "unit checkpoint cadence in committed pages (0 = default 256)")
	partitions := flag.Int("partitions", 4, "work-units per condition")
	slots := flag.Int("slots", 0, "concurrent worker slots (0 = default 4)")
	maxAttempts := flag.Int("max-attempts", 0, "attempt budget per unit (0 = default 3)")
	dir := flag.String("dir", "", "run root for unit specs, partials, and the ledger (required)")
	workerBin := flag.String("worker", "", "worker executable for the process transport (empty = in-process)")
	out := flag.String("out", "", "write the merged study's run bundle to this directory")
	compare := flag.Bool("compare", false, "render the paper-comparison report before writing the bundle (matches `repro -exp compare` bundles byte for byte)")
	flag.Parse()

	if *dir == "" {
		log.Fatal("coordinator: -dir is required")
	}
	opts := canvassing.Options{
		Seed: *seed, Scale: *scale, Workers: *workers,
		WithAdblock: *adblock, WithM1: *m1,
		FaultRate: *faults, Retries: *retries, VisitTimeout: *visitTimeout,
		SnapshotReuse: *snapshots, TraceVisits: *trace,
		CheckpointEvery: *every,
	}
	d := canvassing.DistribOptions{
		Dir: *dir, Partitions: *partitions, Slots: *slots, MaxAttempts: *maxAttempts,
	}
	if *workerBin != "" {
		d.Spawn = &distrib.ProcessSpawner{Binary: *workerBin, Args: []string{"-distrib-unit"}, Stderr: os.Stderr}
	}

	start := time.Now()
	study, ledger, err := canvassing.RunDistributed(opts, d)
	if ledger != nil {
		fmt.Print(distrib.RenderLedger(ledger.Records()))
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged %d conditions in %s\n", len(study.Telemetry().Events.Conditions()), time.Since(start).Round(time.Millisecond))
	if *compare {
		// Rendering runs the defense experiments, whose events join the
		// bundle below — exactly as in repro's compare path.
		fmt.Println(study.PaperComparison())
	}
	if *out != "" {
		if err := study.WriteBundle(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote merged run bundle to %s\n", *out)
	}
}
