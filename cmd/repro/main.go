// Command repro regenerates every table and figure of the paper: it runs
// the full study (control crawl, ad-blocker re-crawls, M1 validation
// crawl, all analyses) and prints the experiment suite plus the
// paper-vs-measured ledger. Single experiments can be selected with -exp.
//
// The paper-scale run is -scale 1 (20k popular + 20k tail sites); the
// default 0.1 finishes in well under a minute.
//
// Observability: -metrics appends the phase-timing table and metrics
// snapshot, -trace writes the span trace as JSON lines, -status serves
// the live ops plane (/statusz, /healthz, /readyz, /metrics.prom,
// /red) during the run, -pprof serves the same plus net/http/pprof,
// and -outdir writes a run bundle (manifest, metrics, trace, evidence
// events, rendered reports) for later comparison with cmd/runsdiff.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"canvassing"
	"canvassing/internal/obs"
	"canvassing/internal/obs/ops"
)

func main() {
	seed := flag.Uint64("seed", 1, "study seed")
	scale := flag.Float64("scale", 0.1, "web scale (1.0 = paper scale)")
	workers := flag.Int("workers", 8, "crawler workers")
	exp := flag.String("exp", "all", "experiment id (e1..e12, ex1/entropy, ex2/inner, ex3/interact), 'all', or 'compare'")
	out := flag.String("out", "", "also write the report to this file")
	dumpDir := flag.String("dump-canvases", "", "write sample canvas images (Figure 2 artifact) to this directory")
	ckptDir := flag.String("checkpoint", "", "checkpoint the study into this directory (see -resume)")
	ckptEvery := flag.Int("checkpoint-every", 256, "checkpoint cadence in committed pages")
	interruptAfter := flag.Int("interrupt-after", 0, "testing: halt the study after N checkpoint writes (exit code 3)")
	resumeDir := flag.String("resume", "", "resume an interrupted study from this checkpoint directory (ignores the run-shape flags; they come from the checkpoint)")
	snapshots := flag.Bool("snapshots", false, "reuse control-crawl page bodies across re-crawls via a content-addressed snapshot store")
	interact := flag.Bool("interact", false, "plant interaction-gated vendors and run the EX3 crawl-vs-interaction experiment")
	cli := obs.BindCLI(flag.CommandLine)
	fcli := obs.BindFaultCLI(flag.CommandLine)
	flag.Parse()

	if *resumeDir != "" {
		s, err := canvassing.Resume(*resumeDir)
		if err != nil {
			log.Fatal(err)
		}
		if s.Halted {
			fmt.Fprintf(os.Stderr, "study interrupted again; resume with -resume %s\n", *resumeDir)
			os.Exit(3)
		}
		report(s, *exp, *out, *dumpDir, cli)
		return
	}

	// Extension experiments run lean: EX1 needs no crawl; EX2 needs only
	// the control crawl plus the inner-page re-crawl; EX3 the control
	// crawl plus the interaction-driven re-crawl.
	switch e := strings.ToLower(*exp); e {
	case "entropy", "ex1":
		emit(canvassing.EntropyAnalysis(48, *seed).Render(), *out)
		return
	case "inner", "ex2":
		s := canvassing.Run(canvassing.Options{Seed: *seed, Scale: *scale, Workers: *workers, AnalysisWorkers: cli.AnalysisWorkers, TraceVisits: cli.Tracez})
		text := s.InnerPages().Render()
		if cli.Metrics {
			text += "\n" + s.TelemetryReport()
		}
		emit(text, *out)
		finishTelemetry(s, cli)
		return
	case "interact", "ex3":
		s := canvassing.Run(canvassing.Options{Seed: *seed, Scale: *scale, Workers: *workers, AnalysisWorkers: cli.AnalysisWorkers, TraceVisits: cli.Tracez, Interact: true})
		text := s.InteractionGap().Render()
		if cli.Metrics {
			text += "\n" + s.TelemetryReport()
		}
		emit(text, *out)
		finishTelemetry(s, cli)
		return
	}

	// Build the study in stages (rather than canvassing.Run) so the
	// debug endpoint is live while the crawls execute.
	s := canvassing.New(canvassing.Options{
		Seed:            *seed,
		Scale:           *scale,
		Workers:         *workers,
		AnalysisWorkers: cli.AnalysisWorkers,
		WithAdblock:     true,
		WithM1:          true,
		FaultRate:       fcli.Rate,
		Retries:         fcli.Retries,
		VisitTimeout:    fcli.VisitTimeout,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		SnapshotReuse:   *snapshots,
		TraceVisits:     cli.Tracez,
		Interact:        *interact,
	})
	if ck := s.Checkpointer(); ck != nil {
		ck.StopAfter = *interruptAfter
	}
	plane, err := ops.Start(cli, s.Telemetry(), s.Visits())
	if err != nil {
		log.Fatal(err)
	}
	defer plane.Close()
	s.RunControl()
	if !s.Halted {
		s.Analyze()
		s.RunAdblock()
	}
	if !s.Halted {
		s.RunM1()
	}
	if s.Halted {
		fmt.Fprintf(os.Stderr, "study interrupted; resume with -resume %s\n", *ckptDir)
		os.Exit(3)
	}
	s.Telemetry().Status.MarkDone()
	report(s, *exp, *out, *dumpDir, cli)
}

// report renders the selected experiment(s) and finishes telemetry.
func report(s *canvassing.Study, exp, out, dumpDir string, cli *obs.CLI) {
	var text string
	switch strings.ToLower(exp) {
	case "all":
		text = s.RenderAll() + "\n" + s.PaperComparison()
	case "compare":
		text = s.PaperComparison()
	case "e1":
		text = s.Prevalence().Render()
	case "e2":
		text = s.Figure1(50).Render()
	case "e3":
		text = s.Reach().Render()
	case "e4":
		text = s.Table1().Render()
	case "e5":
		t2, err := s.Table2()
		if err != nil {
			log.Fatal(err)
		}
		text = t2.Render()
	case "e6":
		text = s.Table4().Render()
	case "e7":
		text = s.Evasion().Render()
	case "e8":
		text = s.Randomization(40).Render()
	case "e9":
		cm, err := s.CrossMachine()
		if err != nil {
			log.Fatal(err)
		}
		text = cm.Render()
	case "e10":
		text = s.Filters().Render()
	case "e11":
		text = s.Table3().Render()
	case "e12":
		text = s.RuleContext().Render()
	default:
		log.Fatalf("unknown experiment %q", exp)
	}

	if cli.Metrics {
		text += "\n" + s.TelemetryReport()
	}
	emit(text, out)
	finishTelemetry(s, cli)

	if dumpDir != "" {
		files, err := s.DumpSampleCanvases(dumpDir, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d sample canvases to %s\n", len(files), dumpDir)
	}
}

// finishTelemetry writes the span-trace export and the run bundle if
// requested.
func finishTelemetry(s *canvassing.Study, cli *obs.CLI) {
	if err := cli.WriteTrace(s.Telemetry()); err != nil {
		log.Fatal(err)
	}
	if cli.OutDir != "" {
		if err := s.WriteBundle(cli.OutDir); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote run bundle to %s\n", cli.OutDir)
	}
}

// emit prints the report and optionally writes it to a file.
func emit(text, out string) {
	fmt.Println(text)
	if out != "" {
		if err := os.WriteFile(out, []byte(text+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
