// Command crawl runs the instrumented crawler over a synthetic web and
// writes one JSON object per visited page to stdout or a file — the
// equivalent of the paper's Tracker Radar Collector output.
//
// Telemetry: -metrics prints the metrics snapshot to stderr, -trace
// writes the span trace as JSON lines, and -pprof serves /metrics,
// /spans, and net/http/pprof live during the crawl.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"canvassing/internal/adblock"
	"canvassing/internal/blocklist"
	"canvassing/internal/crawler"
	"canvassing/internal/machine"
	"canvassing/internal/obs"
	"canvassing/internal/web"
)

func main() {
	seed := flag.Uint64("seed", 1, "generation seed")
	scale := flag.Float64("scale", 0.05, "web scale")
	cohort := flag.String("cohort", "both", "popular, tail, or both")
	machineName := flag.String("machine", "intel", "intel or m1")
	blocker := flag.String("adblock", "none", "none, abp, or ubo")
	workers := flag.Int("workers", 8, "crawler worker pool width")
	out := flag.String("out", "", "output JSONL path (default stdout)")
	metrics := flag.Bool("metrics", false, "print the metrics snapshot and phase timings to stderr")
	trace := flag.String("trace", "", "write the span trace as JSON lines to this path")
	pprofAddr := flag.String("pprof", "", "serve live /metrics, /spans, and /debug/pprof on this address during the crawl")
	flag.Parse()

	tel := obs.NewTelemetry()
	if *pprofAddr != "" {
		serveDebug(*pprofAddr, tel)
	}

	sp := tel.Tracer.Start("webgen")
	w := web.Generate(web.Config{Seed: *seed, Scale: *scale, TrancoMax: 1_000_000})
	sp.End()

	var sites []*web.Site
	switch *cohort {
	case "popular":
		sites = w.CohortSites(web.Popular)
	case "tail":
		sites = w.CohortSites(web.Tail)
	case "both":
		sites = append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	default:
		log.Fatalf("unknown cohort %q", *cohort)
	}

	cfg := crawler.DefaultConfig()
	cfg.Workers = *workers
	cfg.Seed = *seed
	switch *machineName {
	case "intel":
		cfg.Profile = machine.Intel()
	case "m1":
		cfg.Profile = machine.AppleM1()
	default:
		log.Fatalf("unknown machine %q", *machineName)
	}
	lists := blocklist.NewStandardLists(*seed)
	switch *blocker {
	case "none":
	case "abp":
		cfg.Extension = adblock.NewAdblockPlus(lists)
	case "ubo":
		cfg.Extension = adblock.NewUBlockOrigin(lists)
	default:
		log.Fatalf("unknown adblock %q", *blocker)
	}

	cfg.Telemetry = tel
	sp = tel.Tracer.Start("crawl", "machine", *machineName, "adblock", *blocker)
	res := crawler.Crawl(w, sites, cfg)
	sp.End()

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriter(dst)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	for _, p := range res.Pages {
		if err := enc.Encode(p); err != nil {
			log.Fatal(err)
		}
	}
	st := res.Stats().Total
	fmt.Fprintf(os.Stderr, "crawled %d pages ok (%d visited), %d extractions, machine=%s adblock=%s\n",
		st.OK, st.Visited, st.Extractions, res.Machine, *blocker)

	if *metrics {
		fmt.Fprintln(os.Stderr, "\nPhase timings")
		fmt.Fprint(os.Stderr, tel.Tracer.RenderPhases())
		fmt.Fprintf(os.Stderr, "parse-cache hit rate: %.1f%%\n\n", 100*crawler.CacheHitRate(tel.Metrics))
		fmt.Fprint(os.Stderr, tel.Metrics.RenderText())
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tel.Tracer.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote span trace to %s\n", *trace)
	}
}

// serveDebug starts the live telemetry endpoint and surfaces startup
// failures (a taken port would otherwise be silent).
func serveDebug(addr string, tel *obs.Telemetry) {
	errc := obs.Serve(addr, tel, true)
	go func() {
		if err := <-errc; err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: debug server on %s failed: %v\n", addr, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /spans, /debug/pprof on %s\n", addr)
}
