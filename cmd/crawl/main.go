// Command crawl runs the instrumented crawler over a synthetic web and
// writes one JSON object per visited page to stdout or a file — the
// equivalent of the paper's Tracker Radar Collector output.
//
// Observability: -metrics prints the metrics snapshot to stderr, -trace
// writes the span trace as JSON lines, -status serves the live ops
// plane (/statusz, /healthz, /readyz, /metrics.prom, /red) during the
// crawl, -pprof serves the same plus net/http/pprof, and -outdir
// writes a run bundle for later comparison with cmd/runsdiff.
//
// Distributed runs: -distrib-unit <dir> turns the binary into a worker
// process for cmd/coordinator — it reads the work-unit spec the
// coordinator wrote into dir, rebuilds the study world from it, runs
// its crawl slice as a checkpointed crawl, and writes the partial
// bundle. Exit codes follow the distrib.Spawner contract: 0 on unit
// completion, 3 on a mid-unit stop (-interrupt-after), anything else
// on failure.
//
// Fault injection: -faults gives every site a seeded chance of a fault
// plan (outage, flaky connection, latency spike, truncated response)
// that the crawler's resilience engine retries through; -retries and
// -visit-timeout tune the engine. -fault-sweep crawls the same web at a
// comma-separated list of fault rates and prints a resilience table
// instead of page JSONL:
//
//	crawl -scale 0.05 -fault-sweep 0,0.1,0.2,0.4
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"canvassing"
	"canvassing/internal/adblock"
	"canvassing/internal/analysis"
	"canvassing/internal/blocklist"
	"canvassing/internal/bundle"
	"canvassing/internal/checkpoint"
	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/distrib"
	"canvassing/internal/machine"
	"canvassing/internal/netsim"
	"canvassing/internal/obs"
	"canvassing/internal/obs/ops"
	"canvassing/internal/obs/tracez"
	"canvassing/internal/report"
	"canvassing/internal/web"
)

// runOpts is the crawl configuration recorded in a checkpoint sidecar,
// so `crawl -resume <dir>` rebuilds the exact same crawl.
type runOpts struct {
	Seed         uint64        `json:"seed"`
	Scale        float64       `json:"scale"`
	Cohort       string        `json:"cohort"`
	Machine      string        `json:"machine"`
	Adblock      string        `json:"adblock"`
	Workers      int           `json:"workers"`
	FaultRate    float64       `json:"fault_rate,omitempty"`
	Retries      int           `json:"retries,omitempty"`
	VisitTimeout time.Duration `json:"visit_timeout,omitempty"`
	Interact     bool          `json:"interact,omitempty"`
	Profile      string        `json:"interact_profile,omitempty"`
}

func main() {
	seed := flag.Uint64("seed", 1, "generation seed")
	scale := flag.Float64("scale", 0.05, "web scale")
	cohort := flag.String("cohort", "both", "popular, tail, or both")
	machineName := flag.String("machine", "intel", "intel or m1")
	blocker := flag.String("adblock", "none", "none, abp, or ubo")
	workers := flag.Int("workers", 8, "crawler worker pool width")
	out := flag.String("out", "", "output JSONL path (default stdout)")
	sweep := flag.String("fault-sweep", "", "comma-separated fault rates to crawl in sequence (prints a resilience table, suppresses page JSONL)")
	ckptDir := flag.String("checkpoint", "", "enable periodic checkpointing into this directory")
	ckptEvery := flag.Int("checkpoint-every", 256, "committed pages between checkpoints")
	interruptAfter := flag.Int("interrupt-after", 0, "stop the crawl after N checkpoint writes and exit 3 (resume-smoke testing)")
	resumeDir := flag.String("resume", "", "resume a checkpointed crawl from this directory")
	distribUnit := flag.Bool("distrib-unit", false, "run as a distributed-study worker: crawl the work-unit in the directory argument")
	interact := flag.Bool("interact", false, "plant interaction-gated vendors and drive seeded per-site behaviour profiles after settle")
	interactProfile := flag.String("interact-profile", "", "fixed behaviour profile for every site, e.g. 'click,scroll,idle' (default: seeded per-site profiles)")
	cli := obs.BindCLI(flag.CommandLine)
	fcli := obs.BindFaultCLI(flag.CommandLine)
	flag.Parse()

	if *distribUnit {
		dir := flag.Arg(0)
		if dir == "" {
			log.Fatal("distrib-unit: need a unit directory argument")
		}
		interrupted, err := canvassing.RunWorkUnit(dir, *interruptAfter)
		if err != nil {
			log.Fatal(err)
		}
		if interrupted {
			os.Exit(distrib.ExitInterrupted)
		}
		return
	}

	tel := obs.NewTelemetry()
	var visits *tracez.Reservoir
	if cli.Tracez {
		visits = tracez.NewReservoir(*seed, 0, 0)
	}
	plane, err := ops.Start(cli, tel, visits)
	if err != nil {
		log.Fatal(err)
	}
	defer plane.Close()
	tel.Status.MarkRunning()

	// Resume: the checkpoint's recorded options override the flags —
	// a resumed crawl must be the same crawl.
	var cp *checkpoint.Checkpoint
	if *resumeDir != "" {
		var err error
		cp, err = checkpoint.Load(*resumeDir)
		if err != nil {
			log.Fatal(err)
		}
		var ro runOpts
		if err := json.Unmarshal(cp.Opts, &ro); err != nil {
			log.Fatalf("resume: checkpoint options: %v", err)
		}
		*seed, *scale, *cohort = ro.Seed, ro.Scale, ro.Cohort
		*machineName, *blocker, *workers = ro.Machine, ro.Adblock, ro.Workers
		fcli.Rate, fcli.Retries, fcli.VisitTimeout = ro.FaultRate, ro.Retries, ro.VisitTimeout
		*interact, *interactProfile = ro.Interact, ro.Profile
		*ckptDir = *resumeDir
		tel.Metrics.Restore(cp.Metrics)
		tel.Events.Restore(cp.Events, cp.EventsSeq, cp.EventsDropped)
	}

	sp := tel.Tracer.Start("webgen")
	w := web.Generate(web.Config{Seed: *seed, Scale: *scale, TrancoMax: 1_000_000, Interact: *interact})
	sp.End()

	var sites []*web.Site
	switch *cohort {
	case "popular":
		sites = w.CohortSites(web.Popular)
	case "tail":
		sites = w.CohortSites(web.Tail)
	case "both":
		sites = append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	default:
		log.Fatalf("unknown cohort %q", *cohort)
	}

	cfg := crawler.DefaultConfig()
	cfg.Workers = *workers
	cfg.Seed = *seed
	switch *machineName {
	case "intel":
		cfg.Profile = machine.Intel()
	case "m1":
		cfg.Profile = machine.AppleM1()
	default:
		log.Fatalf("unknown machine %q", *machineName)
	}
	lists := blocklist.NewStandardLists(*seed)
	cfg.Condition = "control"
	switch *blocker {
	case "none":
	case "abp":
		cfg.Extension = adblock.NewAdblockPlus(lists)
		cfg.Condition = "abp"
	case "ubo":
		cfg.Extension = adblock.NewUBlockOrigin(lists)
		cfg.Condition = "ubo"
	default:
		log.Fatalf("unknown adblock %q", *blocker)
	}

	cfg.Interact = *interact
	if *interactProfile != "" {
		prof, err := crawler.ParseProfile(*interactProfile)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Behavior = &prof
	}

	if fcli.Rate > 0 {
		cfg.Faults = netsim.NewFaultModel(*seed, fcli.Rate)
		cfg.Retries = fcli.Retries
		cfg.VisitTimeout = fcli.VisitTimeout
	}
	if cp != nil && cp.Faults != nil {
		cfg.Faults = netsim.RestoreFaultModel(*cp.Faults)
	}

	if *sweep != "" {
		if err := runFaultSweep(w, sites, cfg, *seed, *sweep, cli, fcli); err != nil {
			log.Fatal(err)
		}
		return
	}
	// Visit tracing stays off the sweep path: each sweep rate runs with
	// fresh telemetry and conditions would collide in one reservoir.
	cfg.Visits = visits

	var ckpt *checkpoint.Writer
	if *ckptDir != "" {
		ckpt = checkpoint.NewWriter(*ckptDir, *ckptEvery)
		ckpt.Metrics = tel.Metrics
		ckpt.Events = tel.Events
		ckpt.Status = tel.Status
		ckpt.Faults = cfg.Faults
		ckpt.StopAfter = *interruptAfter
		if cp != nil {
			ckpt.Adopt(cp) // sequence and opts carry over
		} else if err := ckpt.SetOpts(runOpts{
			Seed: *seed, Scale: *scale, Cohort: *cohort,
			Machine: *machineName, Adblock: *blocker, Workers: *workers,
			FaultRate: fcli.Rate, Retries: fcli.Retries, VisitTimeout: fcli.VisitTimeout,
			Interact: *interact, Profile: *interactProfile,
		}); err != nil {
			log.Fatal(err)
		}
		cfg.CommitEvery = ckpt.Every()
		ext := ""
		if cfg.Extension != nil {
			ext = cfg.Extension.Name()
		}
		cfg.OnCommit = ckpt.Hook(cfg.Profile.Name, ext)
	}
	if cp != nil {
		if cs := cp.Crawl(cfg.Condition); cs != nil {
			cfg.Resume = &crawler.ResumeState{Pages: cs.Pages, ParseSeen: cs.ParseSeen}
			fmt.Fprintf(os.Stderr, "resume: continuing %q from page %d/%d\n", cfg.Condition, cs.Frontier, cs.Total)
		}
	}

	cfg.Telemetry = tel
	sp = tel.Tracer.Start("crawl", "machine", *machineName, "adblock", *blocker)
	res := crawler.Crawl(w, sites, cfg)
	sp.End()
	if !res.Interrupted {
		tel.Status.MarkDone()
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriter(dst)
	enc := json.NewEncoder(bw)
	for _, p := range res.Pages {
		if p == nil {
			continue // uncommitted tail of an interrupted crawl
		}
		if err := enc.Encode(p); err != nil {
			log.Fatal(err)
		}
	}
	bw.Flush()
	st := res.Stats().Total
	fmt.Fprintf(os.Stderr, "crawled %d pages ok (%d visited), %d extractions, machine=%s adblock=%s\n",
		st.OK, st.Visited, st.Extractions, res.Machine, *blocker)

	if cli.Metrics {
		if rate, ok := crawler.CacheHitRate(tel.Metrics); ok {
			fmt.Fprintf(os.Stderr, "\nparse-cache hit rate: %.1f%%\n", 100*rate)
		} else {
			fmt.Fprintf(os.Stderr, "\nparse-cache hit rate: n/a (no lookups)\n")
		}
		cli.PrintMetrics(tel, os.Stderr)
	}
	if err := cli.WriteTrace(tel); err != nil {
		log.Fatal(err)
	}
	if cli.OutDir != "" {
		m := bundle.Manifest{
			Seed:    *seed,
			Scale:   *scale,
			Workers: *workers,
			Notes:   fmt.Sprintf("cmd/crawl cohort=%s machine=%s adblock=%s", *cohort, *machineName, *blocker),
		}
		if err := bundle.Write(cli.OutDir, m, tel); err != nil {
			log.Fatal(err)
		}
		if err := tracez.WriteExemplars(filepath.Join(cli.OutDir, tracez.ExemplarsFile), visits, tel.Tracer.Records()); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote run bundle to %s\n", cli.OutDir)
	}
	if res.Interrupted {
		fmt.Fprintf(os.Stderr, "crawl interrupted at page %d/%d; resume with -resume %s\n",
			res.Frontier, len(res.Pages), *ckptDir)
		os.Exit(3)
	}
}

// runFaultSweep crawls the same site list once per requested fault rate
// (fresh telemetry each run, same seed) and prints how resilience and
// measured prevalence respond as the network degrades.
func runFaultSweep(w *web.Web, sites []*web.Site, base crawler.Config, seed uint64, spec string, cli *obs.CLI, fcli *obs.FaultCLI) error {
	var rates []float64
	for _, f := range strings.Split(spec, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("fault-sweep: bad rate %q: %w", f, err)
		}
		rates = append(rates, r)
	}
	t := report.NewTable(fmt.Sprintf("Fault sweep — seed %d, %d sites", seed, len(sites)),
		"rate", "ok", "degraded", "failed", "refused", "timeout", "circ-open", "retries", "extractions", "fp-sites", "prevalence")
	for _, rate := range rates {
		cfg := base
		cfg.Telemetry = obs.NewTelemetry()
		cfg.Faults = nil
		if rate > 0 {
			cfg.Faults = netsim.NewFaultModel(seed, rate)
			cfg.Retries = fcli.Retries
			cfg.VisitTimeout = fcli.VisitTimeout
		}
		res := crawler.Crawl(w, sites, cfg)
		st := res.Stats().Total
		aw := cli.AnalysisWorkers
		if aw <= 0 {
			aw = cfg.Workers
		}
		ex := analysis.NewExecutor(aw, analysis.NewCache(cfg.Telemetry.Metrics), cfg.Telemetry)
		ds := detect.ComputeStats(ex.AnalyzeAll(res.Pages, nil, cfg.Condition))
		snap := cfg.Telemetry.Metrics.Snapshot()
		t.AddRow(fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprint(st.OK), fmt.Sprint(st.Degraded), fmt.Sprint(st.Failed),
			fmt.Sprint(st.FailReasons[crawler.FailRefused]),
			fmt.Sprint(st.FailReasons[crawler.FailTimeout]),
			fmt.Sprint(st.FailReasons[crawler.FailCircuitOpen]),
			fmt.Sprint(snap.Counters["crawl.retry"]),
			fmt.Sprint(st.Extractions),
			fmt.Sprint(ds.SitesFingerprinting),
			fmt.Sprintf("%.1f%%", 100*ds.PrevalenceFraction()))
		fmt.Fprintf(os.Stderr, "fault-sweep: rate %.0f%% done (%d/%d ok)\n", rate*100, st.OK, st.Visited)
	}
	fmt.Print(t.String())
	return nil
}
