// Command crawl runs the instrumented crawler over a synthetic web and
// writes one JSON object per visited page to stdout or a file — the
// equivalent of the paper's Tracker Radar Collector output.
//
// Observability: -metrics prints the metrics snapshot to stderr, -trace
// writes the span trace as JSON lines, -pprof serves /metrics, /spans,
// /events, and net/http/pprof live during the crawl, and -outdir
// writes a run bundle for later comparison with cmd/runsdiff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"canvassing/internal/adblock"
	"canvassing/internal/blocklist"
	"canvassing/internal/bundle"
	"canvassing/internal/crawler"
	"canvassing/internal/machine"
	"canvassing/internal/obs"
	"canvassing/internal/web"
)

func main() {
	seed := flag.Uint64("seed", 1, "generation seed")
	scale := flag.Float64("scale", 0.05, "web scale")
	cohort := flag.String("cohort", "both", "popular, tail, or both")
	machineName := flag.String("machine", "intel", "intel or m1")
	blocker := flag.String("adblock", "none", "none, abp, or ubo")
	workers := flag.Int("workers", 8, "crawler worker pool width")
	out := flag.String("out", "", "output JSONL path (default stdout)")
	cli := obs.BindCLI(flag.CommandLine)
	flag.Parse()

	tel := obs.NewTelemetry()
	cli.StartPprof(tel)

	sp := tel.Tracer.Start("webgen")
	w := web.Generate(web.Config{Seed: *seed, Scale: *scale, TrancoMax: 1_000_000})
	sp.End()

	var sites []*web.Site
	switch *cohort {
	case "popular":
		sites = w.CohortSites(web.Popular)
	case "tail":
		sites = w.CohortSites(web.Tail)
	case "both":
		sites = append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	default:
		log.Fatalf("unknown cohort %q", *cohort)
	}

	cfg := crawler.DefaultConfig()
	cfg.Workers = *workers
	cfg.Seed = *seed
	switch *machineName {
	case "intel":
		cfg.Profile = machine.Intel()
	case "m1":
		cfg.Profile = machine.AppleM1()
	default:
		log.Fatalf("unknown machine %q", *machineName)
	}
	lists := blocklist.NewStandardLists(*seed)
	cfg.Condition = "control"
	switch *blocker {
	case "none":
	case "abp":
		cfg.Extension = adblock.NewAdblockPlus(lists)
		cfg.Condition = "abp"
	case "ubo":
		cfg.Extension = adblock.NewUBlockOrigin(lists)
		cfg.Condition = "ubo"
	default:
		log.Fatalf("unknown adblock %q", *blocker)
	}

	cfg.Telemetry = tel
	sp = tel.Tracer.Start("crawl", "machine", *machineName, "adblock", *blocker)
	res := crawler.Crawl(w, sites, cfg)
	sp.End()

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriter(dst)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	for _, p := range res.Pages {
		if err := enc.Encode(p); err != nil {
			log.Fatal(err)
		}
	}
	st := res.Stats().Total
	fmt.Fprintf(os.Stderr, "crawled %d pages ok (%d visited), %d extractions, machine=%s adblock=%s\n",
		st.OK, st.Visited, st.Extractions, res.Machine, *blocker)

	if cli.Metrics {
		fmt.Fprintf(os.Stderr, "\nparse-cache hit rate: %.1f%%\n", 100*crawler.CacheHitRate(tel.Metrics))
		cli.PrintMetrics(tel, os.Stderr)
	}
	if err := cli.WriteTrace(tel); err != nil {
		log.Fatal(err)
	}
	if cli.OutDir != "" {
		m := bundle.Manifest{
			Seed:    *seed,
			Scale:   *scale,
			Workers: *workers,
			Notes:   fmt.Sprintf("cmd/crawl cohort=%s machine=%s adblock=%s", *cohort, *machineName, *blocker),
		}
		if err := bundle.Write(cli.OutDir, m, tel); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote run bundle to %s\n", cli.OutDir)
	}
}
