// Command crawl runs the instrumented crawler over a synthetic web and
// writes one JSON object per visited page to stdout or a file — the
// equivalent of the paper's Tracker Radar Collector output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"canvassing/internal/adblock"
	"canvassing/internal/blocklist"
	"canvassing/internal/crawler"
	"canvassing/internal/machine"
	"canvassing/internal/web"
)

func main() {
	seed := flag.Uint64("seed", 1, "generation seed")
	scale := flag.Float64("scale", 0.05, "web scale")
	cohort := flag.String("cohort", "both", "popular, tail, or both")
	machineName := flag.String("machine", "intel", "intel or m1")
	blocker := flag.String("adblock", "none", "none, abp, or ubo")
	workers := flag.Int("workers", 8, "crawler worker pool width")
	out := flag.String("out", "", "output JSONL path (default stdout)")
	flag.Parse()

	w := web.Generate(web.Config{Seed: *seed, Scale: *scale, TrancoMax: 1_000_000})

	var sites []*web.Site
	switch *cohort {
	case "popular":
		sites = w.CohortSites(web.Popular)
	case "tail":
		sites = w.CohortSites(web.Tail)
	case "both":
		sites = append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	default:
		log.Fatalf("unknown cohort %q", *cohort)
	}

	cfg := crawler.DefaultConfig()
	cfg.Workers = *workers
	cfg.Seed = *seed
	switch *machineName {
	case "intel":
		cfg.Profile = machine.Intel()
	case "m1":
		cfg.Profile = machine.AppleM1()
	default:
		log.Fatalf("unknown machine %q", *machineName)
	}
	lists := blocklist.NewStandardLists(*seed)
	switch *blocker {
	case "none":
	case "abp":
		cfg.Extension = adblock.NewAdblockPlus(lists)
	case "ubo":
		cfg.Extension = adblock.NewUBlockOrigin(lists)
	default:
		log.Fatalf("unknown adblock %q", *blocker)
	}

	res := crawler.Crawl(w, sites, cfg)

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriter(dst)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	pages, extractions := 0, 0
	for _, p := range res.Pages {
		if err := enc.Encode(p); err != nil {
			log.Fatal(err)
		}
		if p.OK {
			pages++
			extractions += len(p.Extractions)
		}
	}
	fmt.Fprintf(os.Stderr, "crawled %d pages ok (%d visited), %d extractions, machine=%s adblock=%s\n",
		pages, len(res.Pages), extractions, res.Machine, *blocker)
}
