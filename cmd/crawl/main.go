// Command crawl runs the instrumented crawler over a synthetic web and
// writes one JSON object per visited page to stdout or a file — the
// equivalent of the paper's Tracker Radar Collector output.
//
// Observability: -metrics prints the metrics snapshot to stderr, -trace
// writes the span trace as JSON lines, -pprof serves /metrics, /spans,
// /events, and net/http/pprof live during the crawl, and -outdir
// writes a run bundle for later comparison with cmd/runsdiff.
//
// Fault injection: -faults gives every site a seeded chance of a fault
// plan (outage, flaky connection, latency spike, truncated response)
// that the crawler's resilience engine retries through; -retries and
// -visit-timeout tune the engine. -fault-sweep crawls the same web at a
// comma-separated list of fault rates and prints a resilience table
// instead of page JSONL:
//
//	crawl -scale 0.05 -fault-sweep 0,0.1,0.2,0.4
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"canvassing/internal/adblock"
	"canvassing/internal/analysis"
	"canvassing/internal/blocklist"
	"canvassing/internal/bundle"
	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/machine"
	"canvassing/internal/netsim"
	"canvassing/internal/obs"
	"canvassing/internal/report"
	"canvassing/internal/web"
)

func main() {
	seed := flag.Uint64("seed", 1, "generation seed")
	scale := flag.Float64("scale", 0.05, "web scale")
	cohort := flag.String("cohort", "both", "popular, tail, or both")
	machineName := flag.String("machine", "intel", "intel or m1")
	blocker := flag.String("adblock", "none", "none, abp, or ubo")
	workers := flag.Int("workers", 8, "crawler worker pool width")
	out := flag.String("out", "", "output JSONL path (default stdout)")
	sweep := flag.String("fault-sweep", "", "comma-separated fault rates to crawl in sequence (prints a resilience table, suppresses page JSONL)")
	cli := obs.BindCLI(flag.CommandLine)
	fcli := obs.BindFaultCLI(flag.CommandLine)
	flag.Parse()

	tel := obs.NewTelemetry()
	cli.StartPprof(tel)

	sp := tel.Tracer.Start("webgen")
	w := web.Generate(web.Config{Seed: *seed, Scale: *scale, TrancoMax: 1_000_000})
	sp.End()

	var sites []*web.Site
	switch *cohort {
	case "popular":
		sites = w.CohortSites(web.Popular)
	case "tail":
		sites = w.CohortSites(web.Tail)
	case "both":
		sites = append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	default:
		log.Fatalf("unknown cohort %q", *cohort)
	}

	cfg := crawler.DefaultConfig()
	cfg.Workers = *workers
	cfg.Seed = *seed
	switch *machineName {
	case "intel":
		cfg.Profile = machine.Intel()
	case "m1":
		cfg.Profile = machine.AppleM1()
	default:
		log.Fatalf("unknown machine %q", *machineName)
	}
	lists := blocklist.NewStandardLists(*seed)
	cfg.Condition = "control"
	switch *blocker {
	case "none":
	case "abp":
		cfg.Extension = adblock.NewAdblockPlus(lists)
		cfg.Condition = "abp"
	case "ubo":
		cfg.Extension = adblock.NewUBlockOrigin(lists)
		cfg.Condition = "ubo"
	default:
		log.Fatalf("unknown adblock %q", *blocker)
	}

	if fcli.Rate > 0 {
		cfg.Faults = netsim.NewFaultModel(*seed, fcli.Rate)
		cfg.Retries = fcli.Retries
		cfg.VisitTimeout = fcli.VisitTimeout
	}

	if *sweep != "" {
		if err := runFaultSweep(w, sites, cfg, *seed, *sweep, cli, fcli); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg.Telemetry = tel
	sp = tel.Tracer.Start("crawl", "machine", *machineName, "adblock", *blocker)
	res := crawler.Crawl(w, sites, cfg)
	sp.End()

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriter(dst)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	for _, p := range res.Pages {
		if err := enc.Encode(p); err != nil {
			log.Fatal(err)
		}
	}
	st := res.Stats().Total
	fmt.Fprintf(os.Stderr, "crawled %d pages ok (%d visited), %d extractions, machine=%s adblock=%s\n",
		st.OK, st.Visited, st.Extractions, res.Machine, *blocker)

	if cli.Metrics {
		fmt.Fprintf(os.Stderr, "\nparse-cache hit rate: %.1f%%\n", 100*crawler.CacheHitRate(tel.Metrics))
		cli.PrintMetrics(tel, os.Stderr)
	}
	if err := cli.WriteTrace(tel); err != nil {
		log.Fatal(err)
	}
	if cli.OutDir != "" {
		m := bundle.Manifest{
			Seed:    *seed,
			Scale:   *scale,
			Workers: *workers,
			Notes:   fmt.Sprintf("cmd/crawl cohort=%s machine=%s adblock=%s", *cohort, *machineName, *blocker),
		}
		if err := bundle.Write(cli.OutDir, m, tel); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote run bundle to %s\n", cli.OutDir)
	}
}

// runFaultSweep crawls the same site list once per requested fault rate
// (fresh telemetry each run, same seed) and prints how resilience and
// measured prevalence respond as the network degrades.
func runFaultSweep(w *web.Web, sites []*web.Site, base crawler.Config, seed uint64, spec string, cli *obs.CLI, fcli *obs.FaultCLI) error {
	var rates []float64
	for _, f := range strings.Split(spec, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("fault-sweep: bad rate %q: %w", f, err)
		}
		rates = append(rates, r)
	}
	t := report.NewTable(fmt.Sprintf("Fault sweep — seed %d, %d sites", seed, len(sites)),
		"rate", "ok", "degraded", "failed", "refused", "timeout", "circ-open", "retries", "extractions", "fp-sites", "prevalence")
	for _, rate := range rates {
		cfg := base
		cfg.Telemetry = obs.NewTelemetry()
		cfg.Faults = nil
		if rate > 0 {
			cfg.Faults = netsim.NewFaultModel(seed, rate)
			cfg.Retries = fcli.Retries
			cfg.VisitTimeout = fcli.VisitTimeout
		}
		res := crawler.Crawl(w, sites, cfg)
		st := res.Stats().Total
		aw := cli.AnalysisWorkers
		if aw <= 0 {
			aw = cfg.Workers
		}
		ex := analysis.NewExecutor(aw, analysis.NewCache(cfg.Telemetry.Metrics), cfg.Telemetry)
		ds := detect.ComputeStats(ex.AnalyzeAll(res.Pages, nil, cfg.Condition))
		snap := cfg.Telemetry.Metrics.Snapshot()
		t.AddRow(fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprint(st.OK), fmt.Sprint(st.Degraded), fmt.Sprint(st.Failed),
			fmt.Sprint(st.FailReasons[crawler.FailRefused]),
			fmt.Sprint(st.FailReasons[crawler.FailTimeout]),
			fmt.Sprint(st.FailReasons[crawler.FailCircuitOpen]),
			fmt.Sprint(snap.Counters["crawl.retry"]),
			fmt.Sprint(st.Extractions),
			fmt.Sprint(ds.SitesFingerprinting),
			fmt.Sprintf("%.1f%%", 100*ds.PrevalenceFraction()))
		fmt.Fprintf(os.Stderr, "fault-sweep: rate %.0f%% done (%d/%d ok)\n", rate*100, st.OK, st.Visited)
	}
	fmt.Print(t.String())
	return nil
}
