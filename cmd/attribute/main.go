// Command attribute runs the full pipeline for a seed and prints the
// vendor-attribution results: Table 1 (per-vendor reach), Table 3
// (attribution methods) and the FingerprintJS tier breakdown.
package main

import (
	"flag"
	"fmt"

	"canvassing"
)

func main() {
	seed := flag.Uint64("seed", 1, "study seed")
	scale := flag.Float64("scale", 0.05, "web scale")
	workers := flag.Int("workers", 8, "crawler workers")
	flag.Parse()

	s := canvassing.Run(canvassing.Options{
		Seed: *seed, Scale: *scale, Workers: *workers,
	})
	fmt.Println(s.Table1().Render())
	fmt.Println(s.Table3().Render())
}
