// Command attribute runs the full pipeline for a seed and prints the
// vendor-attribution results: Table 1 (per-vendor reach), Table 3
// (attribution methods) and the FingerprintJS tier breakdown.
//
// Observability: the shared -metrics/-trace/-pprof/-status/-outdir
// flags apply; -outdir writes a run bundle whose attrib.evidence events
// name the mechanism (demo-hash, known-customer-hash, url-pattern,
// url-regexp) behind every attribution in the tables.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"canvassing"
	"canvassing/internal/obs"
	"canvassing/internal/obs/ops"
)

func main() {
	seed := flag.Uint64("seed", 1, "study seed")
	scale := flag.Float64("scale", 0.05, "web scale")
	workers := flag.Int("workers", 8, "crawler workers")
	cli := obs.BindCLI(flag.CommandLine)
	flag.Parse()

	s := canvassing.New(canvassing.Options{
		Seed: *seed, Scale: *scale, Workers: *workers, TraceVisits: cli.Tracez,
	})
	plane, err := ops.Start(cli, s.Telemetry(), s.Visits())
	if err != nil {
		log.Fatal(err)
	}
	defer plane.Close()
	s.RunControl()
	s.Analyze()
	s.Telemetry().Status.MarkDone()
	fmt.Println(s.Table1().Render())
	fmt.Println(s.Table3().Render())
	if cli.Metrics {
		fmt.Println(s.TelemetryReport())
	}
	if err := cli.WriteTrace(s.Telemetry()); err != nil {
		log.Fatal(err)
	}
	if cli.OutDir != "" {
		if err := s.WriteBundle(cli.OutDir); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote run bundle to %s\n", cli.OutDir)
	}
}
