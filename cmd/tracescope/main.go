// Command tracescope analyzes the trace artifacts of a run directory
// (written with -outdir): the phase spans in trace.jsonl plus, when the
// run used -tracez, the per-visit exemplar trees in
// trace_exemplars.jsonl. With one run dir it prints the critical-path
// report: per-phase wall attribution, self-time vs child-time, the
// serial-vs-parallel overlap factor, and the slowest exemplar visits
// with their dominant phase and fault/retry flags. With two run dirs it
// prints a latency-profile diff ranked by attribution shift.
//
//	tracescope ./run                  # critical-path report
//	tracescope ./run-a ./run-b        # latency-profile diff
//	tracescope -folded out.txt ./run  # pprof-style folded stacks
//
// The folded-stack export is one "frame;frame;frame self-ns" line per
// stack, compatible with flamegraph.pl and speedscope. Exemplar trees
// are grouped under a visits;<condition> prefix frame.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"canvassing/internal/obs/tracez"
)

func main() {
	top := flag.Int("top", 10, "slowest exemplar visits to print")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	folded := flag.String("folded", "", "also write pprof-style folded stacks to this path")
	flag.Parse()
	if n := flag.NArg(); n != 1 && n != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracescope [-top N] [-json] [-folded out.txt] <run-dir> [<run-dir-b>]")
		os.Exit(2)
	}

	a, err := tracez.LoadRunDir(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	if flag.NArg() == 2 {
		b, err := tracez.LoadRunDir(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tracez.RenderDiff(a, b))
		return
	}

	if *folded != "" {
		if err := writeFolded(*folded, a); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracescope: wrote folded stacks to %s\n", *folded)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Phases *tracez.Report `json:"phases"`
			Export *tracez.Export `json:"exemplars,omitempty"`
		}{Phases: analyzed(a), Export: a.Export}
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(tracez.RenderReport(a, *top))
}

func analyzed(rd *tracez.RunDir) *tracez.Report {
	rep := tracez.Analyze(rd.Phases)
	return &rep
}

// writeFolded emits the phase spans as bare stacks and each exemplar
// condition's visit trees under a visits;<condition> prefix, so a
// flamegraph separates run phases from sampled visit internals.
func writeFolded(path string, rd *tracez.RunDir) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tracez.WriteFolded(f, rd.Phases, ""); err != nil {
		return err
	}
	if rd.Export != nil {
		for _, c := range rd.Export.Conditions {
			var forest []*tracez.Span
			for _, vt := range append(append([]*tracez.VisitTrace{}, c.Slow...), c.Head...) {
				if vt.Root != nil {
					forest = append(forest, vt.Root)
				}
			}
			if err := tracez.WriteFolded(f, forest, "visits;"+c.Condition); err != nil {
				return err
			}
		}
	}
	return nil
}
