// Command serve is the detection-as-a-service binary: it loads a
// finished study's run bundle (and snapshot store, when present),
// builds the sharded verdict indexes, and serves the JSON lookup API
// plus the full ops plane.
//
//	serve -bundle ./run                       # serve on the default address
//	serve -bundle ./run -addr :0 -addr-file a # pick a port, publish it
//	serve -check http://127.0.0.1:8344        # client mode: probe a server
//
// Client mode (-check) reads /v1/stats for the bundle's top cluster
// and top fingerprinting site, then exercises every endpoint and
// prints the responses — `make serve-smoke` diffs that output against
// a committed expectation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"canvassing"
	"canvassing/internal/serve"
	"canvassing/internal/web"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	bundleDir := flag.String("bundle", "", "run-bundle directory to serve (required unless -check)")
	addr := flag.String("addr", "127.0.0.1:8344", "listen address (\":0\" picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound base URL to this file once listening")
	shards := flag.Int("shards", 0, "index shard count (0 = default 8; any count serves identical bytes)")
	batchWindow := flag.Duration("batch-window", 0, "lookup coalescing window (0 = default 2ms)")
	snapshots := flag.String("snapshots", "", "snapshot-store directory (default <bundle>/snapshots when present)")
	withPprof := flag.Bool("pprof", false, "also serve /debug/pprof on the same address")
	redWindow := flag.Duration("window", 0, "sliding window for the live RED views (default 1m)")
	check := flag.String("check", "", "client mode: probe the server at this base URL and print every endpoint's response")
	flag.Parse()

	if *check != "" {
		if err := runCheck(*check); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *bundleDir == "" {
		fmt.Fprintln(os.Stderr, "usage: serve -bundle <run-dir> [-addr host:port] | serve -check <base-url>")
		os.Exit(2)
	}

	svc, err := serve.Load(serve.Config{
		Dir:         *bundleDir,
		SnapshotDir: *snapshots,
		Shards:      *shards,
		Window:      *batchWindow,
		ListsFor:    canvassing.ListsForSeed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(serve.Banner(svc))

	plane, err := svc.Start(*addr, *withPprof, *redWindow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", plane.URL())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(plane.URL()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := plane.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}

// runCheck probes a running server: stats first (for deterministic
// identifiers), then one request per endpoint, printing each response
// under a "== <request>" header. Any non-200 fails the check.
func runCheck(base string) error {
	base = strings.TrimRight(base, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	stats, err := fetch("GET", base+"/v1/stats", nil)
	if err != nil {
		return err
	}
	var st struct {
		TopCluster string `json:"top_cluster"`
		TopSite    string `json:"top_site"`
	}
	if err := json.Unmarshal(stats, &st); err != nil {
		return fmt.Errorf("/v1/stats: %w", err)
	}
	if st.TopCluster == "" || st.TopSite == "" {
		return fmt.Errorf("/v1/stats reports no top cluster/site — empty bundle?")
	}
	// A boutique tracker host the generated lists know about: the same
	// probe regardless of which bundle is served.
	blockURL := "https://" + web.ActorHost(7) + "/beacon.js"

	fmt.Println("== GET /v1/stats")
	os.Stdout.Write(stats)
	steps := []struct {
		header, method, url string
		body                []byte
	}{
		{"== POST /v1/classify (top cluster hash)", "POST", base + "/v1/classify",
			[]byte(fmt.Sprintf(`{"hash":%q}`, st.TopCluster))},
		{"== POST /v1/classify/batch (top cluster hash + unknown)", "POST", base + "/v1/classify/batch",
			[]byte(fmt.Sprintf(`{"hashes":[%q,"unknown"]}`, st.TopCluster))},
		{"== GET /v1/cluster/{top cluster hash}", "GET", base + "/v1/cluster/" + st.TopCluster, nil},
		{"== GET /v1/block (boutique tracker script)", "GET", base + "/v1/block?url=" + blockURL, nil},
		{"== GET /v1/site/{top fingerprinting site}", "GET", base + "/v1/site/" + st.TopSite, nil},
	}
	for _, s := range steps {
		body, err := fetch(s.method, s.url, s.body)
		if err != nil {
			return err
		}
		fmt.Println(s.header)
		os.Stdout.Write(body)
	}
	return nil
}

func fetch(method, url string, body []byte) ([]byte, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	out, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, err
	}
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s %s: %s: %s", method, url, res.Status, strings.TrimSpace(string(out)))
	}
	return out, nil
}
