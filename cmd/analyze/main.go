// Command analyze reads a crawl JSONL file (from cmd/crawl) and runs the
// detection and clustering analyses over it: prevalence, filter yield,
// and the Figure 1 canvas-popularity distribution.
//
// Observability: the shared -metrics/-trace/-pprof/-status/-outdir
// flags apply; -outdir writes a run bundle carrying one detect.classify
// event per extraction and the cluster membership assignments.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"canvassing/internal/analysis"
	"canvassing/internal/bundle"
	"canvassing/internal/cluster"
	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/obs"
	"canvassing/internal/obs/ops"
	"canvassing/internal/obs/tracez"
	"canvassing/internal/report"
	"canvassing/internal/web"
)

func main() {
	in := flag.String("in", "", "crawl JSONL path (default stdin)")
	topK := flag.Int("top", 25, "canvas groups to print")
	cli := obs.BindCLI(flag.CommandLine)
	flag.Parse()

	tel := obs.NewTelemetry()
	var visits *tracez.Reservoir
	if cli.Tracez {
		// Analysis-only binary: the reservoir sees per-shard batch
		// spans, no visit trees.
		visits = tracez.NewReservoir(0, 0, 0)
	}
	plane, err := ops.Start(cli, tel, visits)
	if err != nil {
		log.Fatal(err)
	}
	defer plane.Close()
	tel.Status.MarkRunning()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	sp := tel.Tracer.Start("read-input")
	var pages []*crawler.PageResult
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		var p crawler.PageResult
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			log.Fatalf("bad JSONL line: %v", err)
		}
		pages = append(pages, &p)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	sp.End()
	if len(pages) == 0 {
		log.Fatal("no pages in input")
	}
	tel.Metrics.Counter("analyze.pages").Add(int64(len(pages)))

	aw := cli.AnalysisWorkers
	if aw <= 0 {
		aw = 8
	}
	ex := analysis.NewExecutor(aw, analysis.NewCache(tel.Metrics), tel)
	ex.SetVisits(visits)
	sites := ex.AnalyzeAll(pages, tel.Events, "control")
	t := report.NewTable("Prevalence", "cohort", "crawled-ok", "fp-sites", "prevalence", "yield")
	for _, cohort := range []web.Cohort{web.Popular, web.Tail} {
		var sub []detect.SiteCanvases
		for i := range sites {
			if sites[i].Cohort == cohort {
				sub = append(sub, sites[i])
			}
		}
		if len(sub) == 0 {
			continue
		}
		st := detect.ComputeStats(sub)
		t.AddRow(cohort, st.SitesCrawledOK, st.SitesFingerprinting,
			report.Pct(st.SitesFingerprinting, st.SitesCrawledOK),
			report.Pct(st.Fingerprintable, st.TotalExtractions))
	}
	fmt.Println(t.String())

	sp = tel.Tracer.Start("cluster")
	cl := cluster.BuildEvents(sites, tel.Events)
	sp.End()
	fmt.Printf("canvas groups: %d (popular-unique %d, tail-unique %d)\n\n",
		len(cl.Groups), cl.UniqueCanvases(web.Popular), cl.UniqueCanvases(web.Tail))

	t2 := report.NewTable("Top canvas groups", "rank", "popular", "tail", "events", "scripts", "hash")
	for i, g := range cl.TopK(*topK) {
		t2.AddRow(i+1, g.SiteCount(web.Popular), g.SiteCount(web.Tail),
			g.Events, len(g.ScriptURLs), g.Hash[:12])
	}
	fmt.Println(t2.String())

	tel.Status.MarkDone()
	cli.PrintMetrics(tel, os.Stderr)
	if err := cli.WriteTrace(tel); err != nil {
		log.Fatal(err)
	}
	if cli.OutDir != "" {
		m := bundle.Manifest{Notes: "cmd/analyze"}
		if err := bundle.Write(cli.OutDir, m, tel); err != nil {
			log.Fatal(err)
		}
		if err := tracez.WriteExemplars(filepath.Join(cli.OutDir, tracez.ExemplarsFile), visits, tel.Tracer.Records()); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote run bundle to %s\n", cli.OutDir)
	}
}
