// Command blockcheck runs the blocklist analyses: Table 4 (list coverage
// of test canvases), Table 2 (the ad-blocker re-crawls), the serving-mode
// evasion breakdown, and the A.6 rule-context demonstration.
//
// Observability: the shared -metrics/-trace/-pprof/-status/-outdir
// flags apply; -outdir writes a run bundle whose blocklist.match events
// name the list and rule behind every blocked script of the re-crawls.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"canvassing"
	"canvassing/internal/obs"
	"canvassing/internal/obs/ops"
)

func main() {
	seed := flag.Uint64("seed", 1, "study seed")
	scale := flag.Float64("scale", 0.05, "web scale")
	workers := flag.Int("workers", 8, "crawler workers")
	skipAdblock := flag.Bool("skip-adblock", false, "skip the two ad-blocker re-crawls (faster)")
	cli := obs.BindCLI(flag.CommandLine)
	flag.Parse()

	s := canvassing.New(canvassing.Options{
		Seed: *seed, Scale: *scale, Workers: *workers, WithAdblock: !*skipAdblock,
		TraceVisits: cli.Tracez,
	})
	plane, err := ops.Start(cli, s.Telemetry(), s.Visits())
	if err != nil {
		log.Fatal(err)
	}
	defer plane.Close()
	s.RunControl()
	s.Analyze()
	if !*skipAdblock {
		s.RunAdblock()
	}
	s.Telemetry().Status.MarkDone()
	fmt.Println(s.Table4().Render())
	if !*skipAdblock {
		t2, err := s.Table2()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t2.Render())
	}
	fmt.Println(s.Evasion().Render())
	fmt.Println(s.RuleContext().Render())
	if cli.Metrics {
		fmt.Println(s.TelemetryReport())
	}
	if err := cli.WriteTrace(s.Telemetry()); err != nil {
		log.Fatal(err)
	}
	if cli.OutDir != "" {
		if err := s.WriteBundle(cli.OutDir); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote run bundle to %s\n", cli.OutDir)
	}
}
