// Command blockcheck runs the blocklist analyses: Table 4 (list coverage
// of test canvases), Table 2 (the ad-blocker re-crawls), the serving-mode
// evasion breakdown, and the A.6 rule-context demonstration.
package main

import (
	"flag"
	"fmt"
	"log"

	"canvassing"
)

func main() {
	seed := flag.Uint64("seed", 1, "study seed")
	scale := flag.Float64("scale", 0.05, "web scale")
	workers := flag.Int("workers", 8, "crawler workers")
	skipAdblock := flag.Bool("skip-adblock", false, "skip the two ad-blocker re-crawls (faster)")
	flag.Parse()

	s := canvassing.Run(canvassing.Options{
		Seed: *seed, Scale: *scale, Workers: *workers, WithAdblock: !*skipAdblock,
	})
	fmt.Println(s.Table4().Render())
	if !*skipAdblock {
		t2, err := s.Table2()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t2.Render())
	}
	fmt.Println(s.Evasion().Render())
	fmt.Println(s.RuleContext().Render())
}
