// Command webgen generates a synthetic web and prints its inventory:
// cohort sizes, crawl-success counts, TLD distribution, planted vendor
// deployments and hosted script counts. Use it to inspect what the
// crawler will visit before running a study.
//
// Observability: the shared -metrics/-trace/-pprof/-status/-tracez
// flags apply; webgen performs no visits, so its /tracez reservoir is
// empty and only the webgen phase span appears in the trace export.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"canvassing/internal/obs"
	"canvassing/internal/obs/ops"
	"canvassing/internal/obs/tracez"
	"canvassing/internal/report"
	"canvassing/internal/web"
)

func main() {
	seed := flag.Uint64("seed", 1, "generation seed")
	scale := flag.Float64("scale", 0.05, "web scale (1.0 = the paper's 20k+20k)")
	listSites := flag.Int("sites", 0, "print the first N sites of each cohort")
	trancoOut := flag.String("tranco", "", "export the ranking as a Tranco CSV to this path")
	cli := obs.BindCLI(flag.CommandLine)
	flag.Parse()

	tel := obs.NewTelemetry()
	var visits *tracez.Reservoir
	if cli.Tracez {
		visits = tracez.NewReservoir(*seed, 0, 0)
	}
	plane, err := ops.Start(cli, tel, visits)
	if err != nil {
		log.Fatal(err)
	}
	defer plane.Close()
	tel.Status.MarkRunning()

	sp := tel.Tracer.Start("webgen")
	w := web.Generate(web.Config{Seed: *seed, Scale: *scale, TrancoMax: 1_000_000})
	sp.End()

	t := report.NewTable("Cohorts", "cohort", "sites", "crawl-ok", "with-scripts")
	for _, cohort := range []web.Cohort{web.Popular, web.Tail} {
		sites := w.CohortSites(cohort)
		ok, withScripts := 0, 0
		for _, s := range sites {
			if s.CrawlOK {
				ok++
			}
			if len(s.Scripts) > 0 {
				withScripts++
			}
		}
		t.AddRow(cohort, len(sites), ok, withScripts)
	}
	fmt.Println(t.String())

	tlds := map[string]int{}
	for _, s := range w.Sites {
		i := strings.Index(s.Domain, ".")
		tlds[s.Domain[i+1:]]++
	}
	var keys []string
	for k := range tlds {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return tlds[keys[i]] > tlds[keys[j]] })
	t2 := report.NewTable("TLD distribution", "tld", "sites")
	for _, k := range keys {
		t2.AddRow(k, tlds[k])
	}
	fmt.Println(t2.String())

	vendorCounts := map[string]int{}
	longtail := 0
	for _, deps := range w.Truth {
		for _, d := range deps {
			if d.VendorSlug != "" {
				vendorCounts[d.VendorSlug]++
			} else {
				longtail++
			}
		}
	}
	var slugs []string
	for s := range vendorCounts {
		slugs = append(slugs, s)
	}
	sort.Strings(slugs)
	t3 := report.NewTable("Planted deployments (ground truth)", "vendor", "deployments")
	for _, s := range slugs {
		t3.AddRow(s, vendorCounts[s])
	}
	t3.AddRow("(longtail actors)", longtail)
	fmt.Println(t3.String())

	fmt.Printf("hosted resources: %d, demo pages: %d\n", w.Store.Len(), len(w.Demos))

	if *trancoOut != "" {
		f, err := os.Create(*trancoOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := w.Ranking().WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("ranking exported to %s\n", *trancoOut)
	}

	if *listSites > 0 {
		for _, cohort := range []web.Cohort{web.Popular, web.Tail} {
			fmt.Printf("\n%s sites:\n", cohort)
			for i, s := range w.CohortSites(cohort) {
				if i >= *listSites {
					break
				}
				fmt.Printf("  #%-7d %-28s crawlOK=%-5v scripts=%d\n",
					s.Rank, s.Domain, s.CrawlOK, len(s.Scripts))
			}
		}
	}

	tel.Status.MarkDone()
	cli.PrintMetrics(tel, os.Stderr)
	if err := cli.WriteTrace(tel); err != nil {
		log.Fatal(err)
	}
}
