// Command benchjson converts `go test -bench` output into a JSON
// snapshot. It reads the benchmark stream on stdin, echoes it
// unchanged to stdout (so it sits in a pipe without hiding anything),
// and writes one JSON array of parsed results to -out. `make bench`
// uses it to produce dated BENCH_<date>.json files that runs can be
// compared against.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including any -cpu suffix.
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in (from the
	// preceding "pkg:" line; empty if none was seen).
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds the remaining "<value> <unit>" pairs: B/op,
	// allocs/op, and any b.ReportMetric custom units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "bench.json", "JSON snapshot output path")
	flag.Parse()

	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "pkg: "); ok {
			pkg = rest
			continue
		}
		if r, ok := parseBenchLine(line, pkg); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

// parseBenchLine parses one "BenchmarkName-8  N  X ns/op [V unit]..."
// line; ok is false for non-benchmark lines.
func parseBenchLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Package: pkg, Iterations: iters}
	// The remainder is "<value> <unit>" pairs; ns/op first by convention
	// but don't rely on it.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}
