// Command benchjson converts `go test -bench` output into a JSON
// snapshot. It reads the benchmark stream on stdin, echoes it
// unchanged to stdout (so it sits in a pipe without hiding anything),
// and writes one JSON array of parsed results to -out. `make bench`
// uses it to produce dated BENCH_<date>.json files that
// cmd/benchdiff gates later runs against.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"canvassing/internal/benchfmt"
)

func main() {
	out := flag.String("out", "bench.json", "JSON snapshot output path")
	flag.Parse()

	var results []benchfmt.Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "pkg: "); ok {
			pkg = rest
			continue
		}
		if r, ok := benchfmt.ParseLine(line, pkg); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if err := benchfmt.WriteFile(*out, results); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}
