// Command runsdiff compares two run bundles (directories written with
// -outdir or Study.WriteBundle) and explains what changed between the
// runs: per-site fingerprinting verdict flips, attribution changes, and
// metric movements.
//
// The conditions select which crawl's decisions to compare inside each
// bundle. To reproduce Table 2's adblock delta from bundles, diff the
// control condition of one run against the abp (or ubo) condition of a
// same-seed run:
//
//	runsdiff -cond-a control -cond-b abp ./run-control ./run-adblock
//
// The flip list then sums exactly to the table's prevalence delta:
// lost - gained = fp-sites(A) - fp-sites(B).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"canvassing/internal/bundle"
	"canvassing/internal/checkpoint"
)

func main() {
	condA := flag.String("cond-a", "control", "crawl condition to read from the first bundle")
	condB := flag.String("cond-b", "control", "crawl condition to read from the second bundle")
	jsonOut := flag.Bool("json", false, "emit the diff as JSON instead of text")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: runsdiff [-cond-a C] [-cond-b C] <bundle-dir-a> <bundle-dir-b>")
		os.Exit(2)
	}
	// LoadPartial, not Load: diffing an interrupted run's partial
	// artifacts is a deliberate debugging move here, so runsdiff warns
	// (below) instead of refusing the way the serving path does.
	a, err := bundle.LoadPartial(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	b, err := bundle.LoadPartial(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}
	// A checkpoint sidecar next to a bundle usually means the run was
	// interrupted mid-study; its bundle (if any) reflects partial work.
	for _, dir := range []string{flag.Arg(0), flag.Arg(1)} {
		if _, err := os.Stat(filepath.Join(dir, checkpoint.FileName)); err == nil {
			fmt.Fprintf(os.Stderr, "note: %s holds a checkpoint sidecar (%s); if that run was interrupted, resume it before diffing\n",
				dir, checkpoint.FileName)
		}
	}
	if a.Manifest.Seed != b.Manifest.Seed {
		fmt.Fprintf(os.Stderr, "note: seeds differ (%d vs %d); site-level flips compare different webs\n",
			a.Manifest.Seed, b.Manifest.Seed)
	}
	if a.Manifest.Scale != b.Manifest.Scale {
		fmt.Fprintf(os.Stderr, "note: scales differ (%g vs %g)\n", a.Manifest.Scale, b.Manifest.Scale)
	}
	d := bundle.Compute(a, b, *condA, *condB)
	if *jsonOut {
		if err := writeJSON(d); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(bundle.RenderComparison(a, b, d))
}

func writeJSON(d bundle.Diff) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		CondA         string                `json:"cond_a"`
		CondB         string                `json:"cond_b"`
		FPSitesA      int                   `json:"fp_sites_a"`
		FPSitesB      int                   `json:"fp_sites_b"`
		Flips         []bundle.VerdictFlip  `json:"flips"`
		AttribChanges []bundle.AttribChange `json:"attrib_changes"`
		CounterDeltas []bundle.MetricDelta  `json:"counter_deltas"`
		HistDeltas    []bundle.HistDelta    `json:"hist_deltas"`
		OutcomeDeltas []bundle.MetricDelta  `json:"outcome_deltas"`
	}{d.CondA, d.CondB, d.FPSitesA, d.FPSitesB, d.Flips, d.AttribChanges, d.CounterDeltas, d.HistDeltas, d.OutcomeDeltas})
}
