package canvassing

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"canvassing/internal/bundle"
)

// The determinism oracle: the parallel analysis pipeline must be
// invisible in every serialized artifact. For each seed the serial
// pipeline (AnalysisWorkers=1) writes a reference bundle, and the
// parallel pipeline at widths {2, 8, 32} must reproduce it exactly —
// manifest.json and events.jsonl byte for byte, and metrics.json in
// its deterministic projection (counters, gauges, histogram counts;
// histogram sums/extremes/buckets are wall-clock and vary between ANY
// two runs, serial ones included — see bundle.DeterministicMetrics).
// Two of the seeds crawl under fault injection so the oracle covers
// degraded pages, retries, and visit.outcome events.
//
// The crawl pool is pinned to one worker so this oracle isolates the
// ANALYSIS pool as its axis. (Crawl-side telemetry is now width-
// independent too — the crawler's ordered-commit pipeline; that axis
// has its own oracle in resume_test.go and
// TestCrawlTelemetryWidthInvariant.)
//
// This test runs in the default `go test ./...` sweep and therefore
// joins `make check`.

// oracleCase pairs a seed with a fault rate; nonzero rates must
// produce degraded pages or the fault half of the oracle is vacuous.
type oracleCase struct {
	seed  uint64
	fault float64
}

// Rates are chosen per seed so the crawl actually produces degraded
// (truncated-but-partially-loaded) pages, which are rare at this
// scale: plans that truncate AND leave surviving scripts need a high
// plan rate to show up in an 800-site web.
var oracleCases = []oracleCase{
	{seed: 1, fault: 0},
	{seed: 7, fault: 0.5},
	{seed: 42, fault: 0.35},
}

var oracleWidths = []int{2, 8, 32}

// oracleBundle runs the full pipeline (control + adblock re-crawls +
// every experiment the bundle's report.txt triggers) at the given
// analysis width and writes its bundle to a temp dir.
func oracleBundle(t *testing.T, c oracleCase, analysisWorkers int) (string, *Study) {
	t.Helper()
	s := Run(Options{
		Seed:            c.seed,
		Scale:           0.02,
		Workers:         1,
		AnalysisWorkers: analysisWorkers,
		WithAdblock:     true,
		FaultRate:       c.fault,
		// Per-visit tracing stays on in the oracle: capturing exemplar
		// trees must never move a bundle byte.
		TraceVisits: true,
	})
	dir := filepath.Join(t.TempDir(), "bundle")
	if err := s.WriteBundle(dir); err != nil {
		t.Fatal(err)
	}
	return dir, s
}

// readFile loads one bundle artifact.
func readFile(t *testing.T, dir, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// deterministicMetrics loads a bundle's metrics.json and projects it.
func deterministicMetrics(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := bundle.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	return bundle.DeterministicMetrics(b.Metrics)
}

func TestAnalysisDeterminismOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline 12 times")
	}
	for _, c := range oracleCases {
		refDir, refStudy := oracleBundle(t, c, 1)
		refManifest := readFile(t, refDir, "manifest.json")
		refEvents := readFile(t, refDir, "events.jsonl")
		refReport := readFile(t, refDir, "report.txt")
		refMetrics := deterministicMetrics(t, refDir)
		if len(refEvents) == 0 {
			t.Fatalf("seed %d: serial reference recorded no events", c.seed)
		}
		if c.fault > 0 {
			// The faulted seeds must actually exercise degradation, or
			// this oracle proves nothing about the resilience path.
			if st := refStudy.Control.Stats().Total; st.Degraded == 0 || st.Failed == 0 {
				t.Fatalf("seed %d rate %.2f: no degraded/failed pages (degraded=%d failed=%d)",
					c.seed, c.fault, st.Degraded, st.Failed)
			}
		}
		if hits := refStudy.Analysis().Cache().Hits(); hits == 0 {
			t.Fatalf("seed %d: memo cache never hit across re-analyses", c.seed)
		}
		for _, w := range oracleWidths {
			dir, s := oracleBundle(t, c, w)
			if got := readFile(t, dir, "manifest.json"); !bytes.Equal(got, refManifest) {
				t.Errorf("seed %d width %d: manifest.json differs from serial\n got: %s\nwant: %s",
					c.seed, w, got, refManifest)
			}
			if got := readFile(t, dir, "events.jsonl"); !bytes.Equal(got, refEvents) {
				t.Errorf("seed %d width %d: events.jsonl differs from serial (%d vs %d bytes); first divergence at byte %d",
					c.seed, w, len(got), len(refEvents), firstDiff(got, refEvents))
			}
			if got := deterministicMetrics(t, dir); !bytes.Equal(got, refMetrics) {
				t.Errorf("seed %d width %d: deterministic metrics differ from serial\n got: %s\nwant: %s",
					c.seed, w, got, refMetrics)
			}
			// report.txt carries every rendered experiment; it has no
			// wall-clock content, so it must reproduce too.
			if got := readFile(t, dir, "report.txt"); !bytes.Equal(got, refReport) {
				t.Errorf("seed %d width %d: report.txt differs from serial", c.seed, w)
			}
			if s.Analysis().Workers() != w {
				t.Fatalf("width %d: executor reports %d workers", w, s.Analysis().Workers())
			}
		}
	}
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
